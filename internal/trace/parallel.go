package trace

import (
	"errors"
	"sync"
)

// This file implements the sharded half of the replay pipeline: partitioning
// a recorded event stream along strand boundaries and replaying the
// partitions concurrently. Strands are the strand persistency model's
// independent persist paths (§5.1): the detector keeps a separate
// bookkeeping space per strand and no built-in rule other than the
// programmer-supplied cross-strand order requirements ever correlates
// records across strands. A trace whose events are all strand-local
// therefore replays to the same per-space bookkeeping whether the strands
// are interleaved in one stream or split across shards.

// ErrNotPartitionable reports that a trace contains events with global
// (cross-strand) semantics and cannot be safely partitioned by strand.
var ErrNotPartitionable = errors.New("trace: not partitionable by strand (global events present)")

// PartitionOptions configures PartitionByStrand.
type PartitionOptions struct {
	// Shards caps the number of partitions: strand s maps to shard
	// uint32(s) % Shards, so many short-lived strands fold onto a bounded
	// set of shard replayers. Shards <= 0 means one shard per distinct
	// strand id.
	Shards int
	// DropJoins tolerates KindJoinStrand events by dropping them. A join
	// establishes cross-strand persist ordering, which only the
	// programmer-supplied order rules observe; a consumer replaying without
	// order specs can safely discard joins. Without DropJoins a join makes
	// the trace non-partitionable.
	DropJoins bool
}

// Partition is one shard of a strand-partitioned trace.
type Partition struct {
	// Shard is the shard index (strand id modulo the shard count).
	Shard int
	// Events is the shard's subsequence of the original stream, in original
	// order. Broadcast events (Register/Unregister) appear in every shard.
	Events []Event
}

// partitionClass classifies an event kind for partitioning.
type partitionClass uint8

const (
	classStrandLocal partitionClass = iota // routed to the strand's shard
	classBroadcast                         // replicated into every shard
	classTerminal                          // KindEnd: dropped, the replayer finalizes explicitly
	classJoin                              // KindJoinStrand: droppable on request
	classGlobal                            // cross-strand semantics: not partitionable
)

func classify(k Kind) partitionClass {
	switch k {
	case KindStore, KindFlush, KindFence, KindStrandBegin, KindStrandEnd:
		return classStrandLocal
	case KindRegister, KindUnregister:
		// Registration affects which addresses every space tracks; purging
		// (unregister) touches each space independently. Replicating the
		// event into every shard reproduces the sequential behavior exactly
		// because registration state transitions are idempotent per shard.
		return classBroadcast
	case KindEnd:
		return classTerminal
	case KindJoinStrand:
		return classJoin
	default:
		return classGlobal
	}
}

// PartitionSafe reports whether events can be partitioned by strand under
// the given options (without building the partitions).
func PartitionSafe(events []Event, opt PartitionOptions) bool {
	for i := range events {
		switch classify(events[i].Kind) {
		case classGlobal:
			return false
		case classJoin:
			if !opt.DropJoins {
				return false
			}
		}
	}
	return true
}

func shardOf(strand int32, shards int) int {
	if shards <= 0 {
		return int(uint32(strand))
	}
	return int(uint32(strand) % uint32(shards))
}

// PartitionByStrand splits events into per-shard subsequences. Events keep
// their original relative order within each shard; shards are returned in
// ascending shard index with empty shards omitted. It returns
// ErrNotPartitionable when the trace contains epoch sections, transaction
// log events, or (without DropJoins) strand joins — those have cross-strand
// semantics that a partitioned replay cannot reproduce.
func PartitionByStrand(events []Event, opt PartitionOptions) ([]Partition, error) {
	if !PartitionSafe(events, opt) {
		return nil, ErrNotPartitionable
	}
	// Pass 1: count per-shard events so pass 2 fills exactly-sized slices
	// instead of growing them (the partition pass is the serial fraction of
	// the parallel replay; a second counting pass is cheaper than repeated
	// slice growth on multi-hundred-MB traces).
	counts := map[int]int{}
	broadcast := 0
	for i := range events {
		switch classify(events[i].Kind) {
		case classStrandLocal:
			counts[shardOf(events[i].Strand, opt.Shards)]++
		case classBroadcast:
			broadcast++
		}
	}
	if len(counts) == 0 && broadcast == 0 {
		return nil, nil
	}
	shards := make(map[int]*Partition, len(counts))
	order := make([]int, 0, len(counts))
	for idx, n := range counts {
		shards[idx] = &Partition{Shard: idx, Events: make([]Event, 0, n+broadcast)}
		order = append(order, idx)
	}
	if len(shards) == 0 {
		// Only broadcast events: everything lands in shard 0.
		shards[0] = &Partition{Shard: 0, Events: make([]Event, 0, broadcast)}
		order = append(order, 0)
	}
	for i := range events {
		ev := events[i]
		switch classify(ev.Kind) {
		case classStrandLocal:
			p := shards[shardOf(ev.Strand, opt.Shards)]
			p.Events = append(p.Events, ev)
		case classBroadcast:
			for _, p := range shards {
				p.Events = append(p.Events, ev)
			}
		}
	}
	sortInts(order)
	out := make([]Partition, 0, len(order))
	for _, idx := range order {
		out = append(out, *shards[idx])
	}
	return out, nil
}

func sortInts(a []int) {
	// Insertion sort: shard counts are bounded by GOMAXPROCS-scale values.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// ParallelReplay partitions events by strand and replays each partition
// concurrently on its own handler. mk is called once per partition (from the
// calling goroutine, so it needs no synchronization) and must return the
// shard's handler; each handler then consumes only its shard's events, from
// a single goroutine, via the batch fast path when implemented. Handlers are
// returned in ascending shard order once every shard has fully replayed.
//
// workers caps the number of concurrently replaying shards; workers <= 0
// means no cap (one goroutine per shard).
func ParallelReplay(events []Event, workers int, opt PartitionOptions, mk func(p Partition) Handler) ([]Handler, error) {
	parts, err := PartitionByStrand(events, opt)
	if err != nil {
		return nil, err
	}
	handlers := make([]Handler, len(parts))
	for i, p := range parts {
		handlers[i] = mk(p)
	}
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ReplayEvents(parts[i].Events, handlers[i])
			}
		}()
	}
	for i := range parts {
		work <- i
	}
	close(work)
	wg.Wait()
	return handlers, nil
}
