package trace

// Recorder captures an event stream so it can be replayed to several
// detectors. Replaying one recorded trace to every detector is how the
// benchmark harness guarantees each tool sees the identical instruction
// stream (the paper achieves the same by running the identical binary under
// each Valgrind tool).
type Recorder struct {
	Events []Event

	// Per-kind totals are maintained incrementally so Count/Counts are
	// O(1) — the bench harness queries them per table row, and a rescan
	// of a hundred-million-event recording per row is real time. counted
	// is the watermark of Events already folded into counts; events
	// appended directly to Events (a zero-value Recorder literal) are
	// caught up lazily.
	counted int
	counts  [256]int // indexed by Kind (a uint8)
}

// NewRecorder returns a Recorder with capacity for n events.
func NewRecorder(n int) *Recorder {
	return &Recorder{Events: make([]Event, 0, n)}
}

// syncCounts folds events beyond the watermark into the per-kind counters.
func (r *Recorder) syncCounts() {
	for ; r.counted < len(r.Events); r.counted++ {
		r.counts[r.Events[r.counted].Kind]++
	}
}

// HandleEvent appends ev to the recording.
func (r *Recorder) HandleEvent(ev Event) {
	r.Events = append(r.Events, ev)
	r.syncCounts()
}

// Replay delivers the recorded events, in order, to h.
func (r *Recorder) Replay(h Handler) {
	for _, ev := range r.Events {
		h.HandleEvent(ev)
	}
}

// ReplayBatched delivers the recorded events, in order, to h in contiguous
// slices when h implements BatchHandler (one dynamic dispatch per batch
// instead of per event), and falls back to Replay semantics otherwise.
func (r *Recorder) ReplayBatched(h Handler) {
	ReplayEvents(r.Events, h)
}

// HandleBatch implements BatchHandler: the recording itself is a batch
// consumer, so re-recording a replayed stream takes the fast path.
func (r *Recorder) HandleBatch(evs []Event) {
	r.Events = append(r.Events, evs...)
	r.syncCounts()
}

// Reset discards all recorded events but keeps the backing storage.
func (r *Recorder) Reset() {
	r.Events = r.Events[:0]
	r.counted = 0
	r.counts = [256]int{}
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.Events) }

// Count returns how many recorded events have the given kind.
func (r *Recorder) Count(k Kind) int {
	r.syncCounts()
	return r.counts[k]
}

// Counts returns per-kind totals for the three fundamental operations the
// paper characterizes: stores, cache writebacks and fences.
func (r *Recorder) Counts() (stores, flushes, fences int) {
	r.syncCounts()
	return r.counts[KindStore], r.counts[KindFlush], r.counts[KindFence]
}
