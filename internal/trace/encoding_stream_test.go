package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func mkEncTrace(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Seq: uint64(i + 1), Kind: Kind(i % 3), Addr: uint64(i) * 64, Size: 8,
			Strand: int32(i % 5), Thread: int32(i % 2), Site: SiteID(i % 7),
		}
	}
	return evs
}

func TestStreamingWriterReaderRoundTrip(t *testing.T) {
	// Cross a slab boundary and leave a partial tail batch.
	evs := mkEncTrace(StreamBatchSize*2 + 123)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mix single-event and batch writes.
	if err := tw.WriteEvent(evs[0]); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(evs[1:]); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	dst := make([]Event, 1000) // deliberately not a slab multiple
	for {
		n, err := tr.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch: %d events in, %d out", len(evs), len(got))
	}
}

func TestStreamTraceBatchedDelivery(t *testing.T) {
	evs := mkEncTrace(StreamBatchSize + 7)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	bc := &batchCounter{}
	n, err := StreamTrace(bytes.NewReader(buf.Bytes()), bc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(evs) {
		t.Fatalf("StreamTrace returned %d events, want %d", n, len(evs))
	}
	if bc.batches != 2 {
		t.Fatalf("got %d batches, want 2", bc.batches)
	}
	if !reflect.DeepEqual(bc.events, evs) {
		t.Fatal("streamed events differ from written events")
	}
}

func TestWriterAsHandler(t *testing.T) {
	// A Writer attached as a Handler records straight to the stream.
	evs := mkEncTrace(300)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var h Handler = tw
	for _, ev := range evs {
		h.HandleEvent(ev)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("handler-recorded trace mismatch")
	}
}

func TestStreamTraceTruncatedRecord(t *testing.T) {
	evs := mkEncTrace(10)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3] // chop mid-record
	if _, err := StreamTrace(bytes.NewReader(raw), HandlerFunc(func(Event) {})); err == nil {
		t.Fatal("truncated trace should fail")
	}
}
