package trace

// Journal is a recorded execution of a PM program: the full event stream in
// emission order plus, for store events, the written payload bytes. It is
// the input of record-once crash-space exploration (internal/crashtest):
// instead of re-executing a deterministic program once per crash point, the
// program runs a single time filling a journal, and a shadow pool is driven
// through the journal to reconstruct the machine state at every event
// boundary.
//
// Events alone are not enough to rebuild a crash image — a Store event
// carries its address and size but not the stored bytes — which is why the
// journal pairs the stream with payloads. Payloads are captured by the
// emitting substrate (pmem.Pool.RecordJournal) at emission time, under the
// same serialization as the event itself.
type Journal struct {
	// Events is the recorded stream in emission order. Sequence numbers are
	// dense (1..len) when recorded by pmem.Pool.RecordJournal, so "crash
	// after N events" addresses Events[:N].
	Events []Event

	// payloads[i] holds the bytes written by Events[i] when it is a store,
	// nil otherwise.
	payloads [][]byte
}

// Append records one event and, for stores, its payload. The payload slice
// is retained; callers must pass an unaliased copy.
func (j *Journal) Append(ev Event, payload []byte) {
	j.Events = append(j.Events, ev)
	j.payloads = append(j.payloads, payload)
}

// Len returns the number of recorded events.
func (j *Journal) Len() int { return len(j.Events) }

// Payload returns the stored bytes of event i (nil for non-store events).
func (j *Journal) Payload(i int) []byte { return j.payloads[i] }

// Stores counts the store events in the journal.
func (j *Journal) Stores() int {
	n := 0
	for _, ev := range j.Events {
		if ev.Kind == KindStore {
			n++
		}
	}
	return n
}
