package trace

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
	"time"
)

// encode serializes events and returns the raw trace bytes (header included).
func encode(t *testing.T, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReaderSlowTrickle is the regression for the full-slab blocking read:
// a writer delivering one record per network write must see each record
// come out of ReadBatch immediately, not after StreamBatchSize records have
// buffered (which over a live connection meant "never").
func TestReaderSlowTrickle(t *testing.T) {
	evs := mkEncTrace(16)
	raw := encode(t, evs)

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	type step struct {
		n   int
		evs []Event
		err error
	}
	got := make(chan step)
	go func() {
		tr, err := NewReader(server)
		if err != nil {
			got <- step{err: err}
			return
		}
		defer tr.Close()
		dst := make([]Event, StreamBatchSize)
		for {
			n, err := tr.ReadBatch(dst)
			got <- step{n: n, evs: append([]Event(nil), dst[:n]...), err: err}
			if err != nil {
				return
			}
		}
	}()

	// Header, then one record per write. net.Pipe is synchronous, so every
	// write rendezvouses with a read on the decoder side.
	if _, err := client.Write(raw[:8]); err != nil {
		t.Fatal(err)
	}
	body := raw[8:]
	for i := 0; i < len(evs); i++ {
		if _, err := client.Write(body[i*recordSize : (i+1)*recordSize]); err != nil {
			t.Fatal(err)
		}
		select {
		case s := <-got:
			if s.err != nil {
				t.Fatalf("record %d: %v", i, s.err)
			}
			if s.n != 1 || !reflect.DeepEqual(s.evs, evs[i:i+1]) {
				t.Fatalf("record %d: got %d events %v, want 1 event %v", i, s.n, s.evs, evs[i])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("record %d: decoder stalled waiting for a full slab", i)
		}
	}
	client.Close()
	s := <-got
	if s.err != io.EOF || s.n != 0 {
		t.Fatalf("after close: n=%d err=%v, want 0, io.EOF", s.n, s.err)
	}
}

// TestReaderMidRecordCut: a connection cut mid-record must surface the
// truncated-record error — loudly, once, with the whole records before the
// cut still delivered and no garbage events after it.
func TestReaderMidRecordCut(t *testing.T) {
	evs := mkEncTrace(5)
	raw := encode(t, evs)
	cut := raw[:8+2*recordSize+11] // 2 whole records + 11 bytes of the third

	tr, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var got []Event
	dst := make([]Event, StreamBatchSize)
	var readErr error
	for {
		n, err := tr.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil || !strings.Contains(readErr.Error(), "truncated record") {
		t.Fatalf("err = %v, want a truncated-record error", readErr)
	}
	if !reflect.DeepEqual(got, evs[:2]) {
		t.Fatalf("delivered %d events before the cut, want the 2 whole records", len(got))
	}
	// The error is sticky-shaped: further reads keep failing, never spin or
	// fabricate events.
	if n, err := tr.ReadBatch(dst); n != 0 || err == nil {
		t.Fatalf("read after truncation: n=%d err=%v, want 0 and an error", n, err)
	}
}

// TestReaderCorruptMagicLiveConn: bad magic from a live connection fails
// NewReader immediately — it must not wait for more bytes or deliver
// garbage.
func TestReaderCorruptMagicLiveConn(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := NewReader(server)
		errc <- err
	}()
	if _, err := client.Write([]byte("NOTTRACE")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("err = %v, want bad magic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NewReader stalled on corrupt magic")
	}
}

// TestStreamTraceDisconnectMidSlab: StreamTrace over a connection that dies
// mid-record returns every whole record plus a non-nil error.
func TestStreamTraceDisconnectMidSlab(t *testing.T) {
	evs := mkEncTrace(40)
	raw := encode(t, evs)

	client, server := net.Pipe()
	defer server.Close()

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	var got []Event
	go func() {
		n, err := StreamTrace(server, HandlerFunc(func(ev Event) {
			got = append(got, ev)
		}))
		done <- result{n, err}
	}()

	if _, err := client.Write(raw[:8+40*recordSize-7]); err != nil {
		t.Fatal(err)
	}
	client.Close() // abrupt disconnect, record 40 cut 7 bytes short
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("StreamTrace returned nil error on a mid-record disconnect")
		}
		if r.n != 39 || !reflect.DeepEqual(got, evs[:39]) {
			t.Fatalf("delivered %d events, want the 39 whole records", r.n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("StreamTrace stalled on a dead connection")
	}
}

// TestReaderCloseAfterError: Close after a decode error returns the pooled
// slab exactly once and further reads report EOF (whitebox: the slab field
// is nil'd on the first Close, so a second Put is impossible).
func TestReaderCloseAfterError(t *testing.T) {
	evs := mkEncTrace(3)
	raw := encode(t, evs)
	tr, err := NewReader(bytes.NewReader(raw[:len(raw)-5]))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Event, StreamBatchSize)
	for {
		if _, err := tr.ReadBatch(dst); err != nil {
			break
		}
	}
	tr.Close()
	if tr.slab != nil || tr.buf != nil {
		t.Fatal("Close did not release the slab")
	}
	tr.Close() // second Close is a no-op, not a double pool Put
	if n, err := tr.ReadBatch(dst); n != 0 || err != io.EOF {
		t.Fatalf("read after Close: n=%d err=%v, want 0, io.EOF", n, err)
	}
}

// TestReaderOneByteReads drives the decoder through a reader that returns a
// single byte per call, exercising the partial-record carry across every
// possible boundary; the decode must be byte-identical to the direct one.
func TestReaderOneByteReads(t *testing.T) {
	evs := mkEncTrace(257)
	raw := encode(t, evs)
	got, err := ReadTrace(iotest.OneByteReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("one-byte-at-a-time decode differs from the written trace")
	}
}

// TestMultiHandlerBatchFastPath: a MultiHandler tee must keep StreamTrace
// and ReplayEvents on the batch fast path for batch-capable children while
// still feeding per-event children — the regression for the tee silently
// knocking every consumer off the fast path.
func TestMultiHandlerBatchFastPath(t *testing.T) {
	evs := mkEncTrace(StreamBatchSize + 57)

	bc := &batchCounter{}
	var perEvent []Event
	m := MultiHandler{bc, HandlerFunc(func(ev Event) { perEvent = append(perEvent, ev) })}
	if _, ok := any(m).(BatchHandler); !ok {
		t.Fatal("MultiHandler does not implement BatchHandler")
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	n, err := StreamTrace(bytes.NewReader(buf.Bytes()), m)
	if err != nil || n != len(evs) {
		t.Fatalf("StreamTrace: n=%d err=%v", n, err)
	}
	if bc.batches == 0 {
		t.Fatal("batched child never saw a batch: tee fell off the fast path")
	}
	if !reflect.DeepEqual(bc.events, evs) {
		t.Fatal("batched child events differ")
	}
	if !reflect.DeepEqual(perEvent, evs) {
		t.Fatal("per-event child events differ")
	}

	// Recorder (batched) + plain func through ReplayEvents: same split.
	rec := NewRecorder(len(evs))
	perEvent = nil
	ReplayEvents(evs, MultiHandler{rec, HandlerFunc(func(ev Event) { perEvent = append(perEvent, ev) })})
	if !reflect.DeepEqual(rec.Events, evs) || !reflect.DeepEqual(perEvent, evs) {
		t.Fatal("ReplayEvents through MultiHandler lost events")
	}
}
