package trace

// BatchHandler is the optional batch fast path of the replay pipeline: a
// Handler that can consume a contiguous slice of events in one call. Replay
// through HandleEvent pays one dynamic dispatch per instruction; for traces
// in the hundred-million-event range that dispatch — not the bookkeeping —
// becomes a measurable fraction of replay time. Handlers that implement
// HandleBatch receive DefaultBatchSize-sized slices instead and can hoist
// loop-invariant work (registration checks, counter updates, space lookups)
// out of the per-event path.
//
// HandleBatch(evs) must be semantically identical to calling HandleEvent for
// each event of evs in order. The slice is only valid for the duration of
// the call; implementations must not retain it.
type BatchHandler interface {
	Handler
	HandleBatch(evs []Event)
}

// DefaultBatchSize is the slice size used by the batched replay paths. It is
// sized so a batch of 40-byte events stays comfortably inside the L2 cache
// while amortizing the per-batch overhead to noise.
const DefaultBatchSize = 4096

// ReplayEvents delivers events to h in order, using the batch fast path in
// DefaultBatchSize chunks when h implements BatchHandler and falling back to
// one HandleEvent call per event otherwise.
func ReplayEvents(events []Event, h Handler) {
	bh, ok := h.(BatchHandler)
	if !ok {
		for _, ev := range events {
			h.HandleEvent(ev)
		}
		return
	}
	for len(events) > 0 {
		n := len(events)
		if n > DefaultBatchSize {
			n = DefaultBatchSize
		}
		bh.HandleBatch(events[:n])
		events = events[n:]
	}
}
