package trace

import (
	"bytes"
	"testing"
)

func TestJournalAppendAndAccess(t *testing.T) {
	j := &Journal{}
	if j.Len() != 0 || j.Stores() != 0 {
		t.Fatalf("fresh journal: Len=%d Stores=%d", j.Len(), j.Stores())
	}

	j.Append(Event{Seq: 1, Kind: KindStore, Addr: 64, Size: 8}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	j.Append(Event{Seq: 2, Kind: KindFlush, Addr: 64, Size: 8}, nil)
	j.Append(Event{Seq: 3, Kind: KindFence}, nil)
	j.Append(Event{Seq: 4, Kind: KindStore, Addr: 128, Size: 2}, []byte{9, 10})

	if j.Len() != 4 {
		t.Fatalf("Len = %d", j.Len())
	}
	if j.Stores() != 2 {
		t.Fatalf("Stores = %d", j.Stores())
	}
	if !bytes.Equal(j.Payload(0), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("Payload(0) = %v", j.Payload(0))
	}
	if j.Payload(1) != nil || j.Payload(2) != nil {
		t.Fatal("non-store events must carry nil payloads")
	}
	if !bytes.Equal(j.Payload(3), []byte{9, 10}) {
		t.Fatalf("Payload(3) = %v", j.Payload(3))
	}
	for i, ev := range j.Events {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("event %d has seq %d; journal order must follow emission order", i, ev.Seq)
		}
	}
}
