package trace

import (
	"testing"
)

// recount is the reference implementation Count replaced: a full rescan.
func recount(r *Recorder, k Kind) int {
	n := 0
	for _, ev := range r.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func checkCounts(t *testing.T, r *Recorder, label string) {
	t.Helper()
	for _, k := range []Kind{KindStore, KindFlush, KindFence, KindRegister, KindEnd} {
		if got, want := r.Count(k), recount(r, k); got != want {
			t.Fatalf("%s: Count(%v) = %d, rescan says %d", label, k, got, want)
		}
	}
	s, f, fe := r.Counts()
	if s != recount(r, KindStore) || f != recount(r, KindFlush) || fe != recount(r, KindFence) {
		t.Fatalf("%s: Counts() = (%d,%d,%d) disagrees with rescan", label, s, f, fe)
	}
}

func TestRecorderIncrementalCounts(t *testing.T) {
	r := NewRecorder(16)
	kinds := []Kind{KindStore, KindStore, KindFlush, KindFence, KindRegister,
		KindStore, KindFlush, KindEnd}
	for i, k := range kinds {
		r.HandleEvent(Event{Seq: uint64(i + 1), Kind: k})
	}
	checkCounts(t, r, "after HandleEvent")

	batch := make([]Event, 100)
	for i := range batch {
		batch[i] = Event{Kind: Kind(i % 3)} // stores, flushes, fences
	}
	r.HandleBatch(batch)
	checkCounts(t, r, "after HandleBatch")

	r.Reset()
	if s, f, fe := r.Counts(); s+f+fe != 0 {
		t.Fatalf("counts survive Reset: (%d,%d,%d)", s, f, fe)
	}
	r.HandleEvent(Event{Kind: KindFence})
	checkCounts(t, r, "after Reset+HandleEvent")
}

// TestRecorderLiteralCounts checks a Recorder built by slice literal —
// bypassing the handlers — still counts correctly via the lazy watermark.
func TestRecorderLiteralCounts(t *testing.T) {
	r := &Recorder{Events: []Event{
		{Kind: KindStore}, {Kind: KindStore}, {Kind: KindFence},
	}}
	if got := r.Count(KindStore); got != 2 {
		t.Fatalf("literal recorder Count(store) = %d, want 2", got)
	}
	// Direct appends after the fact are caught up too.
	r.Events = append(r.Events, Event{Kind: KindFlush})
	if got := r.Count(KindFlush); got != 1 {
		t.Fatalf("appended event missed: Count(clf) = %d, want 1", got)
	}
	checkCounts(t, r, "literal")
}
