package trace

import (
	"errors"
	"testing"
)

// failAfterWriter accepts n bytes, then fails every write.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterStickyError drives a Writer as a Handler over a failing sink
// and checks the error is retained and reported by Flush, despite
// HandleEvent having nowhere to return it.
func TestWriterStickyError(t *testing.T) {
	sinkErr := errors.New("disk full")
	// Enough room for the header plus one slab; the second slab write
	// fails inside HandleEvent.
	w := &failAfterWriter{n: 8 + StreamBatchSize*recordSize, err: sinkErr}
	tw, err := NewWriter(w)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 3*StreamBatchSize; i++ {
		tw.HandleEvent(Event{Seq: uint64(i + 1), Kind: KindStore, Addr: 0x1000, Size: 8})
	}
	if tw.Err() == nil {
		t.Fatal("write error not sticky: Err() == nil after failed slab flush")
	}
	if err := tw.WriteEvent(Event{Seq: 1}); !errors.Is(err, sinkErr) {
		t.Fatalf("WriteEvent after failure = %v, want sticky %v", err, sinkErr)
	}
	if err := tw.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush = %v, want sticky %v", err, sinkErr)
	}
}

// TestWriterStickyErrorOnFinalFlush checks an error that only materializes
// while draining the bufio layer is also reported.
func TestWriterStickyErrorOnFinalFlush(t *testing.T) {
	sinkErr := errors.New("sink closed")
	w := &failAfterWriter{n: 8, err: sinkErr} // header fits, records do not
	tw, err := NewWriter(w)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	tw.HandleEvent(Event{Seq: 1, Kind: KindStore, Addr: 0x1000, Size: 8})
	if err := tw.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush = %v, want %v", err, sinkErr)
	}
}

// TestWriterBatchSticky checks HandleBatch paths share the sticky error.
func TestWriterBatchSticky(t *testing.T) {
	sinkErr := errors.New("short sink")
	w := &failAfterWriter{n: 8, err: sinkErr}
	tw, err := NewWriter(w)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	evs := make([]Event, 2*StreamBatchSize)
	tw.HandleBatch(evs)
	if tw.Err() == nil {
		t.Fatal("HandleBatch dropped the write error")
	}
	if err := tw.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush = %v, want %v", err, sinkErr)
	}
}
