package trace

import (
	"fmt"
	"sync"
)

// SiteID identifies a source site (a store/flush location in the PM program)
// for bug reports. Sites are interned in a global registry so Events stay
// small and cheap to copy; the zero SiteID means "unknown site".
type SiteID uint32

// siteRegistry interns site names. The registry is global because site names
// come from package-level instrumentation in workloads; collisions are
// harmless (identical names share an ID).
type siteRegistry struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]SiteID
}

var sites = &siteRegistry{
	names: []string{"?"}, // SiteID 0 is the unknown site
	ids:   map[string]SiteID{"?": 0},
}

// RegisterSite interns name and returns its SiteID. Registering the same
// name twice returns the same ID.
func RegisterSite(name string) SiteID {
	sites.mu.RLock()
	id, ok := sites.ids[name]
	sites.mu.RUnlock()
	if ok {
		return id
	}
	sites.mu.Lock()
	defer sites.mu.Unlock()
	if id, ok := sites.ids[name]; ok {
		return id
	}
	id = SiteID(len(sites.names))
	sites.names = append(sites.names, name)
	sites.ids[name] = id
	return id
}

// SiteName returns the interned name for id, or "site(N)" if id was never
// registered (which indicates a bug in the emitter, not in the program under
// test).
func SiteName(id SiteID) string {
	sites.mu.RLock()
	defer sites.mu.RUnlock()
	if int(id) < len(sites.names) {
		return sites.names[id]
	}
	return fmt.Sprintf("site(%d)", uint32(id))
}

// String implements fmt.Stringer.
func (id SiteID) String() string { return SiteName(id) }
