package trace

import (
	"sync/atomic"
	"testing"
)

// collectHandler records events and can artificially stall to exercise
// backpressure.
type collectHandler struct {
	events  []Event
	batches int
	stall   chan struct{} // when non-nil, each batch waits for a token
}

func (c *collectHandler) HandleEvent(ev Event) { c.events = append(c.events, ev) }

func (c *collectHandler) HandleBatch(evs []Event) {
	if c.stall != nil {
		<-c.stall
	}
	c.batches++
	c.events = append(c.events, evs...)
}

// eventOnlyHandler deliberately lacks HandleBatch to exercise the per-event
// fallback delivery.
type eventOnlyHandler struct {
	events []Event
}

func (c *eventOnlyHandler) HandleEvent(ev Event) { c.events = append(c.events, ev) }

func mkEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Seq: uint64(i + 1), Kind: KindStore, Addr: uint64(0x1000 + 8*i), Size: 8}
	}
	return evs
}

func checkStream(t *testing.T, got []Event, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: order not preserved", i, ev.Seq)
		}
	}
}

func TestPipelineDeliversInOrder(t *testing.T) {
	const n = 3*DefaultBatchSize + 17 // full slabs plus a partial tail
	h := &collectHandler{}
	p := NewPipeline(h)
	for _, ev := range mkEvents(n) {
		p.HandleEvent(ev)
	}
	p.Close()
	checkStream(t, h.events, n)
	if h.batches < 3 {
		t.Fatalf("batch fast path unused: %d batches", h.batches)
	}
}

func TestPipelineEventOnlyFallback(t *testing.T) {
	const n = DefaultBatchSize + 5
	h := &eventOnlyHandler{}
	p := NewPipelineDepth(h, 2)
	p.HandleBatch(mkEvents(n))
	p.Close()
	checkStream(t, h.events, n)
}

func TestPipelineSyncBarrier(t *testing.T) {
	var delivered atomic.Int64
	h := HandlerFunc(func(Event) { delivered.Add(1) })
	p := NewPipeline(h)
	appended := int64(0)
	for round := 1; round <= 3; round++ {
		for _, ev := range mkEvents(DefaultBatchSize/2 + round) {
			p.HandleEvent(ev)
			appended++
		}
		p.Sync()
		// After Sync every event appended so far must have been handled.
		if got := delivered.Load(); got != appended {
			t.Fatalf("round %d: after Sync delivered=%d, want %d", round, got, appended)
		}
	}
	p.Close()
}

func TestPipelineSyncMidStream(t *testing.T) {
	var delivered atomic.Int64
	h := HandlerFunc(func(Event) { delivered.Add(1) })
	p := NewPipeline(h)
	for i, ev := range mkEvents(10 * DefaultBatchSize) {
		p.HandleEvent(ev)
		if i%997 == 0 {
			p.Sync()
			if got := delivered.Load(); got != int64(i+1) {
				t.Fatalf("after Sync at event %d delivered=%d", i+1, got)
			}
		}
	}
	p.Close()
	if got := delivered.Load(); got != int64(10*DefaultBatchSize) {
		t.Fatalf("delivered %d, want %d", got, 10*DefaultBatchSize)
	}
}

// TestPipelineBackpressure stalls the consumer and checks the producer
// blocks rather than queueing unboundedly: with a depth-2 ring at most
// 2 full slabs + the staging slab can be in flight.
func TestPipelineBackpressure(t *testing.T) {
	h := &collectHandler{stall: make(chan struct{})}
	p := NewPipelineDepth(h, 2)

	blocked := make(chan struct{})
	go func() {
		// 2 ring slabs + 1 staging slab fit; the next append must block on
		// the free ring.
		for _, ev := range mkEvents(4 * DefaultBatchSize) {
			p.HandleEvent(ev)
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("producer ran 4 slabs ahead of a stalled depth-2 consumer")
	default:
	}
	// Release the consumer; the producer must finish.
	go func() {
		for i := 0; i < 4; i++ {
			h.stall <- struct{}{}
		}
	}()
	<-blocked
	p.Close()
	checkStream(t, h.events, 4*DefaultBatchSize)
}

func TestPipelineCloseIdempotent(t *testing.T) {
	h := &collectHandler{}
	p := NewPipeline(h)
	p.HandleEvent(Event{Seq: 1, Kind: KindStore, Addr: 0x1000, Size: 8})
	p.Close()
	p.Close() // second close is a no-op
	checkStream(t, h.events, 1)
}

// TestPipelineLazyDefersUntilSync checks the lazy discipline: nothing is
// delivered while slabs fit in the ring, and Sync drains everything.
func TestPipelineLazyDefersUntilSync(t *testing.T) {
	var delivered atomic.Int64
	h := HandlerFunc(func(Event) { delivered.Add(1) })
	p := NewPipelineOpts(h, PipelineOptions{Depth: 8, Lazy: true})
	const n = 4 * DefaultBatchSize // fits in the ring with room to spare
	for _, ev := range mkEvents(n) {
		p.HandleEvent(ev)
	}
	if got := delivered.Load(); got != 0 {
		t.Fatalf("lazy consumer delivered %d events before any Sync", got)
	}
	p.Sync()
	if got := delivered.Load(); got != n {
		t.Fatalf("after Sync delivered=%d, want %d", got, n)
	}
	p.Close()
}

// TestPipelineLazyRingExhaustion overflows a small lazy ring and checks the
// producer wakes the parked consumer instead of deadlocking.
func TestPipelineLazyRingExhaustion(t *testing.T) {
	h := &collectHandler{}
	p := NewPipelineOpts(h, PipelineOptions{Depth: 2, Lazy: true})
	const n = 6 * DefaultBatchSize // three times the ring capacity
	p.HandleBatch(mkEvents(n))
	p.Close()
	checkStream(t, h.events, n)
}

// TestPipelineLazyCloseDrains checks Close alone (no Sync) fully drains a
// lazy pipeline, including the partial staging slab.
func TestPipelineLazyCloseDrains(t *testing.T) {
	h := &collectHandler{}
	p := NewPipelineOpts(h, PipelineOptions{Lazy: true})
	const n = 2*DefaultBatchSize + 31
	for _, ev := range mkEvents(n) {
		p.HandleEvent(ev)
	}
	p.Close()
	checkStream(t, h.events, n)
}

// TestPipelineLazyRepeatedSync exercises the park/wake cycle: each Sync must
// wake the re-parked consumer and observe a complete prefix.
func TestPipelineLazyRepeatedSync(t *testing.T) {
	var delivered atomic.Int64
	h := HandlerFunc(func(Event) { delivered.Add(1) })
	p := NewPipelineOpts(h, PipelineOptions{Lazy: true})
	appended := int64(0)
	for round := 1; round <= 5; round++ {
		for _, ev := range mkEvents(DefaultBatchSize + round) {
			p.HandleEvent(ev)
			appended++
		}
		p.Sync()
		if got := delivered.Load(); got != appended {
			t.Fatalf("round %d: after Sync delivered=%d, want %d", round, got, appended)
		}
	}
	p.Close()
}

// TestPipelineRecorderEquivalence checks a recorded pipelined stream is
// byte-identical to the input stream.
func TestPipelineRecorderEquivalence(t *testing.T) {
	evs := mkEvents(2*DefaultBatchSize + 123)
	rec := NewRecorder(len(evs))
	p := NewPipeline(rec)
	p.HandleBatch(evs)
	p.Close()
	if len(rec.Events) != len(evs) {
		t.Fatalf("recorded %d events, want %d", len(rec.Events), len(evs))
	}
	for i := range evs {
		if rec.Events[i] != evs[i] {
			t.Fatalf("event %d differs: got %v want %v", i, rec.Events[i], evs[i])
		}
	}
}
