package trace

import (
	"fmt"
	"strings"
)

// This file fans the live detection pipeline out across shards: a
// ShardedPipeline routes the producer's event stream to one Pipeline (and
// one consumer goroutine) per shard using the exact strand-locality rules
// of PartitionByStrand / core.ReplayParallel, so an N-thread workload gets
// N cores of detection instead of one. Each shard handler observes the
// same per-shard subsequence a partitioned replay of the recorded stream
// would hand it, which is what makes sharded live reports byte-identical
// to inline delivery (see core.ShardedDetector for the merge).

// Conduit is the asynchronous delivery surface an event producer tracks
// for its drain points: both the single-consumer Pipeline and the fan-out
// ShardedPipeline satisfy it. Sync is the delivery barrier (every event
// staged before the call has reached the handler when it returns); Close
// drains and stops the consumer goroutines.
type Conduit interface {
	BatchHandler
	Handler() Handler
	Sync()
	Close()
	Err() error
}

var (
	_ Conduit = (*Pipeline)(nil)
	_ Conduit = (*ShardedPipeline)(nil)
)

// Sharder is implemented by handlers that can split themselves into
// independent per-shard consumers for strand-partitioned live delivery.
// ShardHandlers returns one handler per shard; a nil (or single-element)
// slice means the handler cannot shard — the attaching pool then falls
// back to a single-consumer pipeline around the Sharder itself.
type Sharder interface {
	Handler
	ShardHandlers() []Handler
}

// ShardedPipelineStats counts the routing decisions a ShardedPipeline made
// that differ from plain FIFO forwarding, so tests (and curious operators)
// can see the partitioning at work.
type ShardedPipelineStats struct {
	// Broadcasts counts events replicated into every shard
	// (Register/Unregister — idempotent per shard).
	Broadcasts uint64
	// Barriers counts global events (epoch boundaries, transaction log
	// adds) that were sequenced with a full-shard drain barrier before
	// being broadcast.
	Barriers uint64
	// DroppedJoins counts KindJoinStrand events dropped (inert without
	// cross-strand order specs, exactly as in partitioned replay).
	DroppedJoins uint64
	// DroppedEnds counts KindEnd events dropped (shard detectors finalize
	// at Report time instead).
	DroppedEnds uint64
}

// ShardedPipeline is the fan-out stage of the live detection pipeline: it
// routes events to per-shard Pipelines by the partitioning rules of
// PartitionByStrand. The producer side (HandleEvent, HandleBatch,
// StrandSlot, Sync, Close) must be externally serialized, exactly like a
// single Pipeline's — the emitting pool's mutex provides this.
//
// Routing, per event kind:
//
//   - Strand-local kinds (Store/Flush/Fence/StrandBegin/StrandEnd) go to
//     shard uint32(strand) % shards, the same mapping replay uses.
//   - Register/Unregister broadcast into every shard (idempotent region
//     bookkeeping).
//   - JoinStrand and End are dropped (joins are inert without order specs;
//     finalization happens at Report time), mirroring partitioned replay.
//   - Everything else (epoch boundaries, TxLogAdd) is global: the pipeline
//     drains every shard to a barrier, then broadcasts the event, so each
//     shard observes it at the same stream position a sequential consumer
//     would. Configurations where these events influence reports are not
//     shardable in the first place (core.Shardable); the barrier keeps the
//     delivery order principled rather than load-bearing.
type ShardedPipeline struct {
	owner  Handler // the attached Sharder, for Detach-by-handler
	pipes  []*Pipeline
	stats  ShardedPipelineStats
	waits  []<-chan struct{} // scratch for parallel barriers
	closed bool
}

// NewShardedPipeline starts one Pipeline per shard handler, all with the
// same options. owner identifies the composite handler the shards came
// from (a Sharder); Handler returns it. len(shards) must be at least 2 —
// a single shard is just a Pipeline.
func NewShardedPipeline(owner Handler, shards []Handler, opts PipelineOptions) *ShardedPipeline {
	if len(shards) < 2 {
		panic("trace: NewShardedPipeline needs at least 2 shard handlers")
	}
	sp := &ShardedPipeline{
		owner: owner,
		pipes: make([]*Pipeline, len(shards)),
		waits: make([]<-chan struct{}, len(shards)),
	}
	for i, h := range shards {
		sp.pipes[i] = NewPipelineOpts(h, opts)
	}
	return sp
}

// Handler returns the composite handler the shards were derived from, so
// an owner holding only the sharded pipeline can identify (and detach by)
// the wrapped consumer.
func (sp *ShardedPipeline) Handler() Handler { return sp.owner }

// Shards returns the number of shards.
func (sp *ShardedPipeline) Shards() int { return len(sp.pipes) }

// Stats returns a snapshot of the routing counters.
func (sp *ShardedPipeline) Stats() ShardedPipelineStats { return sp.stats }

func (sp *ShardedPipeline) shardOf(strand int32) int {
	return int(uint32(strand) % uint32(len(sp.pipes)))
}

// StrandSlot is the zero-copy producer path: it hands out an in-place slot
// in the staging slab of the strand's shard. The caller must fill every
// field and must only use it for strand-local event kinds — the routing
// for broadcast and global kinds goes through HandleEvent.
func (sp *ShardedPipeline) StrandSlot(strand int32) *Event {
	return sp.pipes[sp.shardOf(strand)].Slot()
}

// HandleEvent routes one event.
func (sp *ShardedPipeline) HandleEvent(ev Event) {
	switch classify(ev.Kind) {
	case classStrandLocal:
		sp.pipes[sp.shardOf(ev.Strand)].HandleEvent(ev)
	case classBroadcast:
		sp.stats.Broadcasts++
		for _, p := range sp.pipes {
			p.HandleEvent(ev)
		}
	case classJoin:
		sp.stats.DroppedJoins++
	case classTerminal:
		sp.stats.DroppedEnds++
	default: // classGlobal
		sp.stats.Barriers++
		sp.syncAll()
		for _, p := range sp.pipes {
			p.HandleEvent(ev)
		}
	}
}

// HandleBatch routes a slice of events, forwarding runs of consecutive
// same-strand events to their shard in one call (the same run detection as
// core's parallel dispatchers — strand sections arrive as runs, so the
// per-event routing cost amortizes away).
func (sp *ShardedPipeline) HandleBatch(evs []Event) {
	for i := 0; i < len(evs); {
		ev := evs[i]
		if classify(ev.Kind) == classStrandLocal {
			j := i + 1
			for j < len(evs) && classify(evs[j].Kind) == classStrandLocal && evs[j].Strand == ev.Strand {
				j++
			}
			sp.pipes[sp.shardOf(ev.Strand)].HandleBatch(evs[i:j])
			i = j
			continue
		}
		sp.HandleEvent(ev)
		i++
	}
}

// Sync drains every shard: when it returns, each shard handler has
// consumed its full subsequence of the events staged before the call. The
// markers post to all shards before waiting on any, so lazy shards drain
// concurrently. After Close, Sync returns immediately.
func (sp *ShardedPipeline) Sync() {
	if sp.closed {
		return
	}
	sp.syncAll()
}

func (sp *ShardedPipeline) syncAll() {
	for i, p := range sp.pipes {
		sp.waits[i] = p.syncBegin()
	}
	for _, c := range sp.waits {
		<-c
	}
}

// Close drains and stops every shard's consumer goroutine, concurrently.
// Idempotent; the pipeline must not be used after Close.
func (sp *ShardedPipeline) Close() {
	if sp.closed {
		return
	}
	sp.closed = true
	for i, p := range sp.pipes {
		sp.waits[i] = p.closeBegin()
	}
	for _, c := range sp.waits {
		<-c
	}
}

// Err aggregates the shard pipelines' handler-panic errors, nil when every
// shard is healthy. Call after a barrier for a definitive answer.
func (sp *ShardedPipeline) Err() error {
	var msgs []string
	for i, p := range sp.pipes {
		if err := p.Err(); err != nil {
			msgs = append(msgs, fmt.Sprintf("shard %d: %v", i, err))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("trace: %s", strings.Join(msgs, "; "))
}

var _ BatchHandler = (*ShardedPipeline)(nil)
