// Package ycsb implements the YCSB core workloads A–F (Cooper et al.) used
// by the characterization study (§3): operation mixes over a keyed store
// with zipfian, uniform and latest request distributions.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Store is the system under test: the adapter interface YCSB drives.
type Store interface {
	Read(key string) bool
	Update(key string, value []byte) error
	Insert(key string, value []byte) error
	Scan(startKey string, count int) int
}

// Workload identifies one of the six core workloads.
type Workload byte

// The six core workloads.
const (
	A Workload = 'A' // 50% read, 50% update, zipfian
	B Workload = 'B' // 95% read, 5% update, zipfian
	C Workload = 'C' // 100% read, zipfian
	D Workload = 'D' // 95% read, 5% insert, latest
	E Workload = 'E' // 95% scan, 5% insert, zipfian
	F Workload = 'F' // 50% read, 50% read-modify-write, zipfian
)

// All lists the workloads in paper order (loads A-F).
func All() []Workload { return []Workload{A, B, C, D, E, F} }

// String returns e.g. "a_YCSB", the paper's label.
func (w Workload) String() string {
	return fmt.Sprintf("%c_YCSB", w+('a'-'A'))
}

// Config parameterizes a run.
type Config struct {
	// Records is the number of preloaded records.
	Records int
	// Ops is the number of operations to run.
	Ops int
	// ValueSize is the value payload size (default 100, YCSB's field size).
	ValueSize int
	// ScanLen is the maximum scan length for workload E (default 16).
	ScanLen int
	// Seed seeds the generators.
	Seed int64
}

// Run preloads Records records and executes Ops operations of the given
// workload against the store.
func Run(w Workload, s Store, cfg Config) error {
	if cfg.Records <= 0 {
		cfg.Records = 1000
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 100
	}
	if cfg.ScanLen == 0 {
		cfg.ScanLen = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	value := make([]byte, cfg.ValueSize)
	rng.Read(value)

	for i := 0; i < cfg.Records; i++ {
		if err := s.Insert(Key(i), value); err != nil {
			return fmt.Errorf("ycsb load: %w", err)
		}
	}

	zipf := NewZipfian(uint64(cfg.Records), 0.99, rng)
	inserted := cfg.Records
	for op := 0; op < cfg.Ops; op++ {
		switch w {
		case A:
			if rng.Float64() < 0.5 {
				s.Read(Key(int(zipf.Next())))
			} else {
				if err := s.Update(Key(int(zipf.Next())), value); err != nil {
					return err
				}
			}
		case B:
			if rng.Float64() < 0.95 {
				s.Read(Key(int(zipf.Next())))
			} else {
				if err := s.Update(Key(int(zipf.Next())), value); err != nil {
					return err
				}
			}
		case C:
			s.Read(Key(int(zipf.Next())))
		case D:
			if rng.Float64() < 0.95 {
				// Latest distribution: skew toward recently inserted keys.
				back := int(zipf.Next())
				k := inserted - 1 - back
				if k < 0 {
					k = 0
				}
				s.Read(Key(k))
			} else {
				if err := s.Insert(Key(inserted), value); err != nil {
					return err
				}
				inserted++
			}
		case E:
			if rng.Float64() < 0.95 {
				s.Scan(Key(int(zipf.Next())), 1+rng.Intn(cfg.ScanLen))
			} else {
				if err := s.Insert(Key(inserted), value); err != nil {
					return err
				}
				inserted++
			}
		case F:
			k := Key(int(zipf.Next()))
			s.Read(k)
			if rng.Float64() < 0.5 {
				if err := s.Update(k, value); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("ycsb: unknown workload %q", string(w))
		}
	}
	return nil
}

// Key formats record i as a YCSB user key.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// Zipfian generates zipf-distributed values in [0, n) using the
// Gray et al. rejection-free method YCSB uses.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian returns a generator over [0, n) with the given skew
// (YCSB default 0.99).
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipf-distributed value.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
