package ycsb

import (
	"math/rand"
	"testing"

	"pmdebugger/internal/memcached"
)

// recordingStore counts operation kinds for mix assertions.
type recordingStore struct {
	reads, updates, inserts, scans int
	keys                           map[string]bool
}

func newRecordingStore() *recordingStore {
	return &recordingStore{keys: map[string]bool{}}
}

func (r *recordingStore) Read(key string) bool { r.reads++; return r.keys[key] }
func (r *recordingStore) Update(key string, value []byte) error {
	r.updates++
	r.keys[key] = true
	return nil
}
func (r *recordingStore) Insert(key string, value []byte) error {
	r.inserts++
	r.keys[key] = true
	return nil
}
func (r *recordingStore) Scan(startKey string, count int) int { r.scans++; return 0 }

func TestWorkloadMixes(t *testing.T) {
	const records, ops = 200, 4000
	type want struct {
		reads, updates, inserts, scans float64 // expected fraction of ops
	}
	wants := map[Workload]want{
		A: {reads: 0.5, updates: 0.5},
		B: {reads: 0.95, updates: 0.05},
		C: {reads: 1.0},
		D: {reads: 0.95, inserts: 0.05},
		E: {scans: 0.95, inserts: 0.05},
		F: {reads: 1.0, updates: 0.5}, // F reads every op, updates half
	}
	for _, w := range All() {
		rs := newRecordingStore()
		if err := Run(w, rs, Config{Records: records, Ops: ops, Seed: 5}); err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		exp := wants[w]
		check := func(name string, got int, frac float64) {
			t.Helper()
			want := frac * ops
			if frac > 0 && (float64(got) < want*0.85 || float64(got) > want*1.15) {
				t.Errorf("%s: %s = %d, want ~%.0f", w, name, got, want)
			}
			if frac == 0 && got > 0 {
				t.Errorf("%s: unexpected %s = %d", w, name, got)
			}
		}
		check("reads", rs.reads, exp.reads)
		check("updates", rs.updates, exp.updates)
		check("inserts", rs.inserts-records, exp.inserts) // preload uses Insert
		check("scans", rs.scans, exp.scans)
	}
}

func TestWorkloadNames(t *testing.T) {
	if A.String() != "a_YCSB" || F.String() != "f_YCSB" {
		t.Fatalf("names: %s %s", A, F)
	}
	if len(All()) != 6 {
		t.Fatalf("All() = %d", len(All()))
	}
}

func TestUnknownWorkload(t *testing.T) {
	if err := Run(Workload('Z'), newRecordingStore(), Config{Records: 1, Ops: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestZipfianDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := NewZipfian(1000, 0.99, rng)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate and the head must hold most of the mass.
	if counts[0] < draws/20 {
		t.Errorf("rank 0 drawn %d times, want > %d", counts[0], draws/20)
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head) < 0.5*draws {
		t.Errorf("head mass = %d/%d, want majority", head, draws)
	}
	if counts[0] <= counts[500] {
		t.Errorf("distribution not skewed: %d vs %d", counts[0], counts[500])
	}
}

func TestMemcachedAdapter(t *testing.T) {
	cache, err := memcached.New(memcached.Config{PoolSize: 1 << 23, HashBuckets: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st := &MemcachedStore{Cache: cache}
	if err := Run(A, st, Config{Records: 200, Ops: 500, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if !st.Read(Key(0)) {
		t.Fatal("preloaded key missing")
	}
	if st.Scan(Key(0), 3) != 3 {
		t.Fatal("scan hits wrong")
	}
	hits, _ := cache.Stat("get_hits")
	if hits == 0 {
		t.Fatal("adapter did not reach the cache")
	}
}
