package ycsb

import "pmdebugger/internal/memcached"

// MemcachedStore adapts a memcached cache to the YCSB Store interface,
// matching the paper's setup of running YCSB loads A–F against memcached.
type MemcachedStore struct {
	Cache  *memcached.Cache
	Thread int32
}

var _ Store = (*MemcachedStore)(nil)

// Read issues a get.
func (m *MemcachedStore) Read(key string) bool {
	_, _, ok := m.Cache.Get(m.Thread, key)
	return ok
}

// Update issues a set over the existing key.
func (m *MemcachedStore) Update(key string, value []byte) error {
	return m.Cache.Set(m.Thread, key, value, 0, 0)
}

// Insert issues a set of a fresh key.
func (m *MemcachedStore) Insert(key string, value []byte) error {
	return m.Cache.Set(m.Thread, key, value, 0, 0)
}

// Scan approximates a range scan with repeated gets: memcached has no
// ordered iteration, and YCSB drivers over KV caches do the same.
func (m *MemcachedStore) Scan(startKey string, count int) int {
	hits := 0
	for i := 0; i < count; i++ {
		if m.Read(startKey) {
			hits++
		}
	}
	return hits
}
