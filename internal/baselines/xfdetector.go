package baselines

import (
	"fmt"
	"strings"

	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// XFDetectorConfig parameterizes the cross-failure detector.
type XFDetectorConfig struct {
	// Orders are persist-order requirements (XFDetector takes these like
	// PMDebugger does, §8).
	Orders []rules.OrderSpec
	// CrossFailureCheck is the post-failure execution run at failure points:
	// it returns an error when recovery would read semantically inconsistent
	// data.
	CrossFailureCheck func() error
	// FailurePointStride samples a failure point every N fences (default 1:
	// every fence). XFDetector restricts its instrumented failure points to
	// bound its overhead (§7.4); raising the stride models that restriction
	// and is what makes it miss bugs in large programs.
	FailurePointStride int
	// MaxFailurePoints caps the total failure points analyzed (0 =
	// unlimited).
	MaxFailurePoints int
}

// XFDetector models the cross-failure detector (§2.2, [38]): full tree
// bookkeeping plus, at every sampled failure point (fence), a pre-failure /
// post-failure analysis pass over the entire tracked state. That per-fence
// whole-state sweep — snapshotting the persistence state and simulating the
// post-failure reader — is what gives the real tool its orders-of-magnitude
// slowdown, and it is reproduced here structurally: each failure point costs
// O(tracked locations) plus a snapshot allocation.
//
// It detects the six Table 6 types: no durability, multiple overwrites, no
// order, redundant flushes, redundant logging and cross-failure semantic
// bugs.
type XFDetector struct {
	rep  *report.Report
	cfg  XFDetectorConfig
	tree *avl.Tree

	names     map[string]intervals.Range
	committed map[string]uint64
	written   map[string]bool
	fenceNo   uint64

	failurePoints int
	snapshot      []avl.Item // reused buffer for the failure-point sweep

	inEpoch bool
	logged  []intervals.Range
	ended   bool
}

// NewXFDetector returns the XFDetector baseline.
func NewXFDetector(cfg XFDetectorConfig) *XFDetector {
	if cfg.FailurePointStride <= 0 {
		cfg.FailurePointStride = 1
	}
	return &XFDetector{
		rep:       report.New("xfdetector"),
		cfg:       cfg,
		tree:      avl.New(),
		names:     map[string]intervals.Range{},
		committed: map[string]uint64{},
		written:   map[string]bool{},
	}
}

// Name returns "xfdetector".
func (xf *XFDetector) Name() string { return "xfdetector" }

// HandleEvent consumes one instrumented instruction.
func (xf *XFDetector) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		xf.rep.Counters.Stores++
		r := intervals.R(ev.Addr, ev.Size)
		// Like pmemcheck, XFDetector is transaction-aware: in-place
		// overwrites under an undo log are legal.
		overlapped := false
		if !xf.inEpoch {
			xf.tree.VisitOverlapping(r, func(avl.Item) { overlapped = true })
		}
		if overlapped {
			xf.rep.Add(report.Bug{
				Type: report.MultipleOverwrites,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
				Message: "location written again before durability",
			})
		}
		xf.tree.Insert(avl.Item{Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site})
		for name, nr := range xf.names {
			if nr.Overlaps(r) {
				xf.written[name] = true
				delete(xf.committed, name)
			}
		}

	case trace.KindFlush:
		xf.rep.Counters.Flushes++
		newly, already := xf.tree.MarkFlushed(intervals.R(ev.Addr, ev.Size))
		if newly == 0 && already > 0 {
			xf.rep.Add(report.Bug{
				Type: report.RedundantFlush,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
				Message: "writeback persists only already-flushed data",
			})
		}

	case trace.KindFence:
		xf.rep.Counters.Fences++
		xf.fenceNo++
		removed := xf.tree.RemoveFlushed()
		for _, it := range removed {
			for name, nr := range xf.names {
				if _, done := xf.committed[name]; done {
					continue
				}
				if it.Range().Contains(nr) {
					xf.committed[name] = xf.fenceNo
					xf.checkOrders(name, ev)
				}
			}
		}
		xf.rep.Counters.TreeNodeSamples += uint64(xf.tree.Len())
		if xf.fenceNo%uint64(xf.cfg.FailurePointStride) == 0 {
			xf.failurePoint()
		}

	case trace.KindRegister:
		if ev.Site == 0 {
			return
		}
		name := trace.SiteName(ev.Site)
		if !strings.HasPrefix(name, "scope:") {
			xf.names[name] = intervals.R(ev.Addr, ev.Size)
		}

	case trace.KindEpochBegin:
		xf.inEpoch = true
		xf.logged = xf.logged[:0]

	case trace.KindEpochEnd:
		xf.inEpoch = false
		xf.logged = xf.logged[:0]

	case trace.KindTxLogAdd:
		r := intervals.R(ev.Addr, ev.Size)
		for _, prev := range xf.logged {
			if prev.Overlaps(r) {
				xf.rep.Add(report.Bug{
					Type: report.RedundantLogging,
					Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
					Message: "object logged twice in one transaction",
				})
				return
			}
		}
		xf.logged = append(xf.logged, r)

	case trace.KindEnd:
		xf.finish()
	}
}

// checkOrders runs the order rule when a named variable just committed.
func (xf *XFDetector) checkOrders(justCommitted string, ev trace.Event) {
	for _, sp := range xf.cfg.Orders {
		if sp.After != justCommitted {
			continue
		}
		bc, ok := xf.committed[sp.Before]
		if ok && bc < xf.fenceNo {
			continue
		}
		xf.rep.Add(report.Bug{
			Type:    report.NoOrderGuarantee,
			Seq:     ev.Seq,
			Site:    trace.RegisterSite("xf-order:" + sp.Before + "<" + sp.After),
			Message: fmt.Sprintf("%q became durable before %q", sp.After, sp.Before),
		})
	}
}

// failurePoint performs the cross-failure analysis pass: snapshot the
// not-yet-durable state and run the post-failure reader. The full sweep per
// failure point is the tool's documented cost profile.
func (xf *XFDetector) failurePoint() {
	if xf.cfg.MaxFailurePoints > 0 && xf.failurePoints >= xf.cfg.MaxFailurePoints {
		return
	}
	xf.failurePoints++
	// Pre-failure stage: snapshot every tracked (non-durable) location.
	xf.snapshot = xf.snapshot[:0]
	xf.tree.Visit(func(it avl.Item) { xf.snapshot = append(xf.snapshot, it) })
	// Post-failure stage: simulate the reader over the snapshot. The
	// analysis walks every snapshotted location; the cross-failure check
	// hook stands in for re-executing the recovery code.
	for i := range xf.snapshot {
		_ = xf.snapshot[i].Range() // the sweep itself is the modeled cost
	}
	if xf.cfg.CrossFailureCheck != nil {
		if err := xf.cfg.CrossFailureCheck(); err != nil {
			xf.rep.Add(report.Bug{
				Type:    report.CrossFailureSemantic,
				Site:    trace.RegisterSite("xf-recovery"),
				Message: err.Error(),
			})
		}
	}
}

// FailurePoints returns how many failure points were analyzed.
func (xf *XFDetector) FailurePoints() int { return xf.failurePoints }

func (xf *XFDetector) finish() {
	if xf.ended {
		return
	}
	xf.ended = true
	// Final failure point at program end, then the durability sweep.
	xf.failurePoint()
	xf.tree.Visit(func(it avl.Item) {
		msg := "location never flushed: missing CLF"
		if it.Flushed {
			msg = "location flushed but not fenced: missing fence"
		}
		xf.rep.Add(report.Bug{
			Type: report.NoDurability,
			Addr: it.Addr, Size: it.Size, Seq: it.Seq, Site: it.Site,
			Message: msg,
		})
	})
}

// Report finalizes and returns the bug report.
func (xf *XFDetector) Report() *report.Report {
	xf.finish()
	return xf.rep
}
