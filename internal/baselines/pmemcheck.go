package baselines

import (
	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/trace"
)

// Pmemcheck models the industry-quality Valgrind tool of the same name
// (§2.2, §7.2). Its bookkeeping differs from PMDebugger in exactly the ways
// the paper identifies as the source of its overhead:
//
//   - every store is inserted into a single address-ordered tree — there is
//     no memory-location array absorbing short-lived records;
//   - every CLF traverses the tree to update per-location flush state;
//   - every fence removes persisted nodes and then eagerly reorganizes the
//     tree (merging adjacent records), paying re-balancing cost each time
//     rather than amortizing it past a threshold.
//
// It detects the four bug types Table 6 credits it with: no durability
// guarantee, multiple overwrites, redundant flushes and flush nothing. It
// has no notion of persist-order requirements, transactions beyond nesting
// flattening, or relaxed-model sections.
type Pmemcheck struct {
	rep     *report.Report
	tree    *avl.Tree
	inEpoch bool
	ended   bool
}

// NewPmemcheck returns the Pmemcheck baseline.
func NewPmemcheck() *Pmemcheck {
	return &Pmemcheck{rep: report.New("pmemcheck"), tree: avl.New()}
}

// Name returns "pmemcheck".
func (pc *Pmemcheck) Name() string { return "pmemcheck" }

// HandleEvent consumes one instrumented instruction.
func (pc *Pmemcheck) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		pc.rep.Counters.Stores++
		r := intervals.R(ev.Addr, ev.Size)
		// Multiple-overwrites: the location is already tracked (written but
		// not yet durable). Pmemcheck understands PMDK transactions
		// (VALGRIND_PMC_START_TX) and does not flag overwrites inside them,
		// since the undo log legitimizes in-place updates.
		overlapped := false
		if !pc.inEpoch {
			pc.tree.VisitOverlapping(r, func(avl.Item) { overlapped = true })
		}
		if overlapped {
			pc.rep.Add(report.Bug{
				Type: report.MultipleOverwrites,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
				Message: "location written again before durability",
			})
		}
		pc.tree.Insert(avl.Item{
			Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
			Strand: ev.Strand,
		})

	case trace.KindFlush:
		pc.rep.Counters.Flushes++
		r := intervals.R(ev.Addr, ev.Size)
		newly, already := pc.tree.MarkFlushed(r)
		if newly == 0 && already > 0 {
			pc.rep.Add(report.Bug{
				Type: report.RedundantFlush,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
				Message: "writeback persists only already-flushed data",
			})
		}
		if newly == 0 && already == 0 {
			pc.rep.Add(report.Bug{
				Type: report.FlushNothing,
				Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
				Message: "writeback does not persist any prior store",
			})
		}

	case trace.KindFence:
		pc.rep.Counters.Fences++
		// Sample the tree as seen during the closing fence interval
		// (Fig. 11): with no location array, everything in flight is here.
		pc.rep.Counters.TreeNodeSamples += uint64(pc.tree.Len())
		pc.tree.RemoveFlushed()
		// Eager reorganization: pmemcheck re-organizes its structure from
		// time to time to accelerate searches (§2.2); modeled as a merge
		// pass at every fence, which is what drives its reorganization
		// count orders of magnitude above PMDebugger's (§7.5).
		pc.tree.Merge()
		pc.rep.Counters.TreeReorgs++

	case trace.KindEpochBegin:
		pc.inEpoch = true

	case trace.KindEpochEnd:
		pc.inEpoch = false

	case trace.KindEnd:
		pc.finish()
	}
}

func (pc *Pmemcheck) finish() {
	if pc.ended {
		return
	}
	pc.ended = true
	pc.tree.Visit(func(it avl.Item) {
		msg := "location never flushed: missing CLF"
		if it.Flushed {
			msg = "location flushed but not fenced: missing fence"
		}
		pc.rep.Add(report.Bug{
			Type: report.NoDurability,
			Addr: it.Addr, Size: it.Size, Seq: it.Seq, Site: it.Site,
			Message: msg,
		})
	})
}

// Report finalizes and returns the bug report.
func (pc *Pmemcheck) Report() *report.Report {
	pc.finish()
	return pc.rep
}

// TreeLen exposes the current tree size for the Fig. 11 analysis.
func (pc *Pmemcheck) TreeLen() int { return pc.tree.Len() }

// TreeStats exposes the tree maintenance counters for the §7.5 analysis.
func (pc *Pmemcheck) TreeStats() avl.Stats { return pc.tree.Stats() }
