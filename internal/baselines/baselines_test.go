package baselines

import (
	"errors"
	"testing"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func feed(d Detector, fn func(c *pmem.Ctx, p *pmem.Pool)) *report.Report {
	p := pmem.New(1 << 16)
	p.Attach(d)
	fn(p.Ctx(), p)
	p.End()
	return d.Report()
}

func TestNulgrindCountsOnly(t *testing.T) {
	n := NewNulgrind()
	rep := feed(n, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1) // an obvious durability bug
	})
	if rep.Len() != 0 {
		t.Fatalf("nulgrind reported bugs:\n%s", rep.Summary())
	}
	if rep.Counters.Stores != 1 {
		t.Fatalf("counters: %+v", rep.Counters)
	}
	if n.Name() != "nulgrind" {
		t.Fatalf("name = %q", n.Name())
	}
}

func TestPmemcheckDetectsFourTypes(t *testing.T) {
	rep := feed(NewPmemcheck(), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(512)
		// no durability: never flushed
		c.Store64(a, 1)
		// multiple overwrites
		c.Store64(a+64, 1)
		c.Store64(a+64, 2)
		c.Persist(a+64, 8)
		// redundant flush
		c.Store64(a+128, 1)
		c.Flush(a+128, 8)
		c.Flush(a+128, 8)
		c.Fence()
		// flush nothing
		c.Flush(a+256, 8)
		c.Fence()
	})
	for _, typ := range []report.BugType{
		report.NoDurability, report.MultipleOverwrites,
		report.RedundantFlush, report.FlushNothing,
	} {
		if !rep.Has(typ) {
			t.Errorf("pmemcheck missed %s:\n%s", typ, rep.Summary())
		}
	}
}

func TestPmemcheckMissesRelaxedModelBugs(t *testing.T) {
	rep := feed(NewPmemcheck(), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(128)
		c.EpochBegin()
		c.Store64(a, 1)
		c.Persist(a, 8)
		c.Store64(a+64, 2)
		c.Persist(a+64, 8) // redundant epoch fence — invisible to pmemcheck
		c.EpochEnd()
	})
	if rep.Has(report.RedundantEpochFence) || rep.Has(report.LackDurabilityInEpoch) {
		t.Fatalf("pmemcheck detected relaxed-model bugs it should not know about")
	}
}

func TestPmemcheckEagerReorganization(t *testing.T) {
	pc := NewPmemcheck()
	feed(pc, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(4096)
		for i := 0; i < 50; i++ {
			c.Store64(a+uint64(i)*64, uint64(i))
			c.Persist(a+uint64(i)*64, 8)
		}
	})
	if got := pc.Report().Counters.TreeReorgs; got != 50 {
		t.Fatalf("pmemcheck reorgs = %d, want one per fence (50)", got)
	}
}

func TestPMTestAnnotatedDetection(t *testing.T) {
	cfg := PMTestConfig{Watch: []string{"cas"}}
	rep := feed(NewPMTest(cfg), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		p.RegisterNamed("cas", a, 8)
		c.Store64(a, 1) // annotated, never persisted
	})
	if !rep.Has(report.NoDurability) {
		t.Fatalf("pmtest missed annotated durability bug:\n%s", rep.Summary())
	}
}

func TestPMTestMissesUnannotated(t *testing.T) {
	rep := feed(NewPMTest(PMTestConfig{}), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.Store64(a, 1) // durability bug but no annotation
	})
	if rep.Len() != 0 {
		t.Fatalf("pmtest detected unannotated bug:\n%s", rep.Summary())
	}
}

func TestPMTestOrderAssertion(t *testing.T) {
	cfg := PMTestConfig{Orders: []rules.OrderSpec{{Before: "v", After: "k"}}}
	rep := feed(NewPMTest(cfg), func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("v", v, 8)
		p.RegisterNamed("k", k, 8)
		c.Store64(k, 1)
		c.Persist(k, 8) // k durable before v
		c.Store64(v, 2)
		c.Persist(v, 8)
	})
	if !rep.Has(report.NoOrderGuarantee) {
		t.Fatalf("pmtest missed order violation:\n%s", rep.Summary())
	}
}

func TestPMTestOrderSatisfied(t *testing.T) {
	cfg := PMTestConfig{Orders: []rules.OrderSpec{{Before: "v", After: "k"}}}
	rep := feed(NewPMTest(cfg), func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		p.RegisterNamed("v", v, 8)
		p.RegisterNamed("k", k, 8)
		c.Store64(v, 2)
		c.Persist(v, 8)
		c.Store64(k, 1)
		c.Persist(k, 8)
	})
	if rep.Len() != 0 {
		t.Fatalf("pmtest false positive:\n%s", rep.Summary())
	}
}

func TestPMTestWatchRanges(t *testing.T) {
	p := pmem.New(1 << 12)
	a := p.Base()
	pt := NewPMTest(PMTestConfig{WatchRanges: []intervals.Range{intervals.R(a, 8)}})
	p.Attach(pt)
	c := p.Ctx()
	c.Store64(a, 1)
	c.Store64(a, 2) // multiple overwrite on a watched range
	c.Persist(a, 8)
	p.End()
	if !pt.Report().Has(report.MultipleOverwrites) {
		t.Fatalf("watch range overwrite missed:\n%s", pt.Report().Summary())
	}
}

func TestPMTestRedundantLogging(t *testing.T) {
	cfg := PMTestConfig{Watch: []string{"obj"}}
	rep := feed(NewPMTest(cfg), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		p.RegisterNamed("obj", a, 16)
		c.EpochBegin()
		c.TxLogAdd(a, 16)
		c.TxLogAdd(a, 16)
		c.Store64(a, 1)
		c.Persist(a, 8)
		c.EpochEnd()
	})
	if !rep.Has(report.RedundantLogging) {
		t.Fatalf("pmtest missed annotated redundant logging:\n%s", rep.Summary())
	}
}

func TestXFDetectorDetectsSixTypes(t *testing.T) {
	calls := 0
	cfg := XFDetectorConfig{
		Orders: []rules.OrderSpec{{Before: "v", After: "k"}},
		CrossFailureCheck: func() error {
			calls++
			if calls == 1 {
				return errors.New("post-failure read of uninitialized value")
			}
			return nil
		},
	}
	xf := NewXFDetector(cfg)
	rep := feed(xf, func(c *pmem.Ctx, p *pmem.Pool) {
		v := p.Alloc(64)
		k := p.Alloc(64)
		a := p.Alloc(256)
		p.RegisterNamed("v", v, 8)
		p.RegisterNamed("k", k, 8)
		// order violation
		c.Store64(k, 1)
		c.Persist(k, 8)
		c.Store64(v, 2)
		c.Persist(v, 8)
		// no durability
		c.Store64(a, 3)
		// multiple overwrite
		c.Store64(a+64, 1)
		c.Store64(a+64, 2)
		c.Persist(a+64, 8)
		// redundant flush
		c.Store64(a+128, 1)
		c.Flush(a+128, 8)
		c.Flush(a+128, 8)
		c.Fence()
		// redundant logging
		c.EpochBegin()
		c.TxLogAdd(a+192, 8)
		c.TxLogAdd(a+192, 8)
		c.Store64(a+192, 1)
		c.Persist(a+192, 8)
		c.EpochEnd()
	})
	for _, typ := range []report.BugType{
		report.NoDurability, report.MultipleOverwrites, report.NoOrderGuarantee,
		report.RedundantFlush, report.RedundantLogging, report.CrossFailureSemantic,
	} {
		if !rep.Has(typ) {
			t.Errorf("xfdetector missed %s:\n%s", typ, rep.Summary())
		}
	}
	if rep.Has(report.FlushNothing) {
		t.Errorf("xfdetector detected flush-nothing, which it should not")
	}
	if xf.FailurePoints() == 0 {
		t.Errorf("no failure points analyzed")
	}
}

func TestXFDetectorFailurePointSampling(t *testing.T) {
	xf := NewXFDetector(XFDetectorConfig{FailurePointStride: 4})
	feed(xf, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		for i := 0; i < 16; i++ {
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
		}
	})
	// 16 fences / stride 4 = 4 sampled + 1 final at End.
	if got := xf.FailurePoints(); got != 5 {
		t.Fatalf("failure points = %d, want 5", got)
	}

	xf = NewXFDetector(XFDetectorConfig{MaxFailurePoints: 3})
	feed(xf, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		for i := 0; i < 16; i++ {
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
		}
	})
	if got := xf.FailurePoints(); got != 3 {
		t.Fatalf("capped failure points = %d, want 3", got)
	}
}

func TestCleanProgramAllBaselines(t *testing.T) {
	clean := func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(256)
		for i := 0; i < 4; i++ {
			c.Store64(a+uint64(i)*64, uint64(i))
			c.Persist(a+uint64(i)*64, 8)
		}
	}
	for _, d := range []Detector{
		NewNulgrind(), NewPmemcheck(), NewPMTest(PMTestConfig{}),
		NewXFDetector(XFDetectorConfig{}),
	} {
		if rep := feed(d, clean); rep.Len() != 0 {
			t.Errorf("%s false positives on clean program:\n%s", d.Name(), rep.Summary())
		}
	}
}

func TestBaselineNames(t *testing.T) {
	if NewPmemcheck().Name() != "pmemcheck" ||
		NewPMTest(PMTestConfig{}).Name() != "pmtest" ||
		NewXFDetector(XFDetectorConfig{}).Name() != "xfdetector" {
		t.Fatal("baseline names wrong")
	}
}

func TestPmemcheckTreeInstrumentation(t *testing.T) {
	pc := NewPmemcheck()
	p := pmem.New(1 << 14)
	p.Attach(pc)
	c := p.Ctx()
	a := p.Alloc(512)
	for i := 0; i < 8; i++ {
		c.Store64(a+uint64(i)*64, uint64(i)) // all unflushed
	}
	if pc.TreeLen() != 8 {
		t.Fatalf("tree len = %d", pc.TreeLen())
	}
	if pc.TreeStats().Inserts != 8 {
		t.Fatalf("stats = %+v", pc.TreeStats())
	}
}
