package baselines

import (
	"pmdebugger/internal/avl"
	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/trace"
)

// PersistenceInspector models Intel's Persistence Inspector (Table 1,
// "Persist. Ins."): a post-mortem tool that records the entire instrumented
// run and analyzes it after the fact, rather than keeping incremental
// bookkeeping. That record-then-analyze design is why the real tool's
// overhead is high (it buffers every access) and why it cannot flag bugs as
// they happen.
//
// The analysis phase replays the recorded stream through the same reference
// semantics the incremental tools use and detects the Table 1 "medium
// coverage" set: missing durability, redundant flushes and multiple
// overwrites. Like pmemcheck it is PMDK-transaction aware.
type PersistenceInspector struct {
	rep    *report.Report
	events []trace.Event
	ended  bool
}

// NewPersistenceInspector returns the post-mortem baseline.
func NewPersistenceInspector() *PersistenceInspector {
	return &PersistenceInspector{rep: report.New("persistence-inspector")}
}

// Name returns "persistence-inspector".
func (pi *PersistenceInspector) Name() string { return "persistence-inspector" }

// HandleEvent buffers the event; all analysis happens post-mortem.
func (pi *PersistenceInspector) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		pi.rep.Counters.Stores++
	case trace.KindFlush:
		pi.rep.Counters.Flushes++
	case trace.KindFence:
		pi.rep.Counters.Fences++
	}
	pi.events = append(pi.events, ev)
	if ev.Kind == trace.KindEnd {
		pi.analyze()
	}
}

// analyze is the post-mortem pass.
func (pi *PersistenceInspector) analyze() {
	if pi.ended {
		return
	}
	pi.ended = true
	tree := avl.New()
	inEpoch := false
	for _, ev := range pi.events {
		switch ev.Kind {
		case trace.KindStore:
			r := intervals.R(ev.Addr, ev.Size)
			if !inEpoch {
				overlapped := false
				tree.VisitOverlapping(r, func(avl.Item) { overlapped = true })
				if overlapped {
					pi.rep.Add(report.Bug{
						Type: report.MultipleOverwrites,
						Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
						Message: "location written again before durability",
					})
				}
			}
			tree.Insert(avl.Item{Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site})
		case trace.KindFlush:
			newly, already := tree.MarkFlushed(intervals.R(ev.Addr, ev.Size))
			if newly == 0 && already > 0 {
				pi.rep.Add(report.Bug{
					Type: report.RedundantFlush,
					Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
					Message: "writeback persists only already-flushed data",
				})
			}
		case trace.KindFence:
			tree.RemoveFlushed()
		case trace.KindEpochBegin:
			inEpoch = true
		case trace.KindEpochEnd:
			inEpoch = false
		}
	}
	tree.Visit(func(it avl.Item) {
		msg := "location never flushed: missing CLF"
		if it.Flushed {
			msg = "location flushed but not fenced: missing fence"
		}
		pi.rep.Add(report.Bug{
			Type: report.NoDurability,
			Addr: it.Addr, Size: it.Size, Seq: it.Seq, Site: it.Site,
			Message: msg,
		})
	})
	pi.events = nil
}

// Report finalizes and returns the bug report.
func (pi *PersistenceInspector) Report() *report.Report {
	pi.analyze()
	return pi.rep
}
