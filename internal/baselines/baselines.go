// Package baselines reimplements the detectors the paper compares against:
// Nulgrind (instrumentation-only), Pmemcheck (industry-quality, tree-only
// bookkeeping with eager reorganization), PMTest (annotation-driven
// selective checking) and XFDetector (cross-failure testing with per-
// failure-point analysis).
//
// Each baseline is faithful to its tool's documented mechanism and detects
// exactly the bug-type set Table 6 credits it with, so both the capability
// matrix and the relative performance shape of the evaluation are
// reproducible.
package baselines

import (
	"pmdebugger/internal/report"
	"pmdebugger/internal/trace"
)

// Detector is the uniform interface the benchmark harness drives: an event
// handler that produces a final bug report. core.Detector and every baseline
// satisfy it.
type Detector interface {
	trace.Handler
	Name() string
	Report() *report.Report
}

// Nulgrind is the no-op tool used to isolate instrumentation overhead
// (§7.2): it consumes the event stream, counts instructions, and performs no
// bookkeeping.
type Nulgrind struct {
	rep *report.Report
}

// NewNulgrind returns the instrumentation-only baseline.
func NewNulgrind() *Nulgrind {
	return &Nulgrind{rep: report.New("nulgrind")}
}

// Name returns "nulgrind".
func (n *Nulgrind) Name() string { return "nulgrind" }

// HandleEvent counts the instruction and discards it.
func (n *Nulgrind) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		n.rep.Counters.Stores++
	case trace.KindFlush:
		n.rep.Counters.Flushes++
	case trace.KindFence:
		n.rep.Counters.Fences++
	}
}

// Report returns an empty report with instruction counters.
func (n *Nulgrind) Report() *report.Report { return n.rep }
