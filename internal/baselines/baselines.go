// Package baselines reimplements the detectors the paper compares against:
// Nulgrind (instrumentation-only), Pmemcheck (industry-quality, tree-only
// bookkeeping with eager reorganization), PMTest (annotation-driven
// selective checking) and XFDetector (cross-failure testing with per-
// failure-point analysis).
//
// Each baseline is faithful to its tool's documented mechanism and detects
// exactly the bug-type set Table 6 credits it with, so both the capability
// matrix and the relative performance shape of the evaluation are
// reproducible.
package baselines

import (
	"pmdebugger/internal/report"
	"pmdebugger/internal/trace"
)

// Detector is the uniform interface the benchmark harness drives: an event
// handler that produces a final bug report. core.Detector and every baseline
// satisfy it.
type Detector interface {
	trace.Handler
	Name() string
	Report() *report.Report
}

// Nulgrind is the no-op tool used to isolate instrumentation overhead
// (§7.2): it consumes the event stream, counts instructions, and performs no
// bookkeeping.
type Nulgrind struct {
	rep *report.Report
}

// NewNulgrind returns the instrumentation-only baseline.
func NewNulgrind() *Nulgrind {
	return &Nulgrind{rep: report.New("nulgrind")}
}

// Name returns "nulgrind".
func (n *Nulgrind) Name() string { return "nulgrind" }

// HandleEvent counts the instruction and discards it.
func (n *Nulgrind) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		n.rep.Counters.Stores++
	case trace.KindFlush:
		n.rep.Counters.Flushes++
	case trace.KindFence:
		n.rep.Counters.Fences++
	}
}

// Report returns an empty report with instruction counters.
func (n *Nulgrind) Report() *report.Report { return n.rep }

// HandleBatch implements trace.BatchHandler: the no-op tool only counts, so
// the whole batch reduces to three counter additions.
func (n *Nulgrind) HandleBatch(evs []trace.Event) {
	var stores, flushes, fences uint64
	for i := range evs {
		switch evs[i].Kind {
		case trace.KindStore:
			stores++
		case trace.KindFlush:
			flushes++
		case trace.KindFence:
			fences++
		}
	}
	n.rep.Counters.Stores += stores
	n.rep.Counters.Flushes += flushes
	n.rep.Counters.Fences += fences
}

var _ trace.BatchHandler = (*Nulgrind)(nil)

// Batched adapts any detector to the batch replay interface with a
// sequential shim: detectors whose bookkeeping has no batch fast path of
// their own (the baseline reimplementations) still plug into batched and
// streamed replay pipelines uniformly.
type Batched struct {
	Detector
}

// WithBatch wraps det so it implements trace.BatchHandler. A detector that
// already has a native batch path is returned unchanged.
func WithBatch(det Detector) Detector {
	if _, ok := det.(trace.BatchHandler); ok {
		return det
	}
	return Batched{Detector: det}
}

// HandleBatch delivers the batch one event at a time.
func (b Batched) HandleBatch(evs []trace.Event) {
	for i := range evs {
		b.Detector.HandleEvent(evs[i])
	}
}

var _ trace.BatchHandler = Batched{}
