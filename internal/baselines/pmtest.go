package baselines

import (
	"fmt"
	"strings"

	"pmdebugger/internal/intervals"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
)

// PMTestConfig carries the programmer annotations PMTest depends on (§2.2,
// §7.3): which variables have assertion-like checkers attached, and which
// isOrderedBefore assertions were written. Variables are referred to by the
// names registered through pmem.RegisterNamed; unannotated state is
// invisible to PMTest — that selectivity is both its speed and its limited
// bug coverage.
type PMTestConfig struct {
	// Watch lists the named variables annotated with durability checkers
	// (isPersist-style assertions).
	Watch []string
	// WatchRanges adds explicit address ranges annotated with checkers.
	WatchRanges []intervals.Range
	// Orders lists isOrderedBefore(X, Y) assertions.
	Orders []rules.OrderSpec
}

type watchedVar struct {
	name    string
	rng     intervals.Range
	have    bool
	writes  []intervals.Range // written-but-not-durable byte ranges
	flushed bool
	durable bool
	lastSeq uint64
	site    trace.SiteID
	// order bookkeeping
	commitAt uint64
}

func (w *watchedVar) written() bool { return len(w.writes) > 0 }

// PMTest models the annotation-driven detector (§2.2): it tracks only
// annotated variables in a flat list, so its per-event work is O(checkers) —
// small, which reproduces its performance advantage — while anything the
// programmer did not annotate is invisible, which reproduces its missed
// bugs. It detects the five Table 6 types: no durability, multiple
// overwrites, no order, redundant flushes and redundant logging.
type PMTest struct {
	rep     *report.Report
	cfg     PMTestConfig
	watched []watchedVar
	fenceNo uint64
	ended   bool

	inEpoch bool
	logged  []intervals.Range
}

// NewPMTest returns the PMTest baseline with the given annotations.
func NewPMTest(cfg PMTestConfig) *PMTest {
	pt := &PMTest{rep: report.New("pmtest"), cfg: cfg}
	for _, n := range cfg.Watch {
		pt.watched = append(pt.watched, watchedVar{name: n})
	}
	for _, sp := range cfg.Orders {
		for _, n := range []string{sp.Before, sp.After} {
			if pt.lookup(n) == nil {
				pt.watched = append(pt.watched, watchedVar{name: n})
			}
		}
	}
	for i, r := range cfg.WatchRanges {
		pt.watched = append(pt.watched, watchedVar{
			name: fmt.Sprintf("range#%d", i), rng: r, have: true,
		})
	}
	return pt
}

// Name returns "pmtest".
func (pt *PMTest) Name() string { return "pmtest" }

func (pt *PMTest) lookup(name string) *watchedVar {
	for i := range pt.watched {
		if pt.watched[i].name == name {
			return &pt.watched[i]
		}
	}
	return nil
}

// HandleEvent consumes one instrumented instruction.
func (pt *PMTest) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.KindStore:
		pt.rep.Counters.Stores++
		r := intervals.R(ev.Addr, ev.Size)
		for i := range pt.watched {
			w := &pt.watched[i]
			if !w.have || !w.rng.Overlaps(r) {
				continue
			}
			wr := w.rng.Intersect(r)
			for _, prev := range w.writes {
				if prev.Overlaps(wr) {
					pt.rep.Add(report.Bug{
						Type: report.MultipleOverwrites,
						Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
						Message: "annotated variable " + w.name + " overwritten before durability",
					})
					break
				}
			}
			w.writes = append(w.writes, wr)
			w.flushed = false
			w.durable = false
			w.lastSeq = ev.Seq
			w.site = ev.Site
		}

	case trace.KindFlush:
		pt.rep.Counters.Flushes++
		r := intervals.R(ev.Addr, ev.Size)
		for i := range pt.watched {
			w := &pt.watched[i]
			if !w.have || !w.written() || !r.Contains(w.rng) {
				continue
			}
			if w.flushed && !w.durable {
				pt.rep.Add(report.Bug{
					Type: report.RedundantFlush,
					Addr: w.rng.Addr, Size: w.rng.Size, Seq: ev.Seq, Site: w.site,
					Message: "annotated variable " + w.name + " flushed twice before fence",
				})
			}
			w.flushed = true
		}

	case trace.KindFence:
		pt.rep.Counters.Fences++
		pt.fenceNo++
		var committed []*watchedVar
		for i := range pt.watched {
			w := &pt.watched[i]
			if w.written() && w.flushed && !w.durable {
				w.durable = true
				w.commitAt = pt.fenceNo
				w.writes = w.writes[:0] // later rewrites start a fresh cycle
				committed = append(committed, w)
			}
		}
		for _, sp := range pt.cfg.Orders {
			after := pt.lookup(sp.After)
			before := pt.lookup(sp.Before)
			if after == nil || before == nil {
				continue
			}
			justCommitted := false
			for _, c := range committed {
				if c == after {
					justCommitted = true
				}
			}
			if !justCommitted {
				continue
			}
			if !(before.durable && before.commitAt < after.commitAt) {
				pt.rep.Add(report.Bug{
					Type: report.NoOrderGuarantee,
					Addr: after.rng.Addr, Size: after.rng.Size, Seq: ev.Seq,
					Site:    trace.RegisterSite("pmtest-order:" + sp.Before + "<" + sp.After),
					Message: fmt.Sprintf("isOrderedBefore(%s, %s) violated", sp.Before, sp.After),
				})
			}
		}

	case trace.KindRegister:
		if ev.Site == 0 {
			return
		}
		name := trace.SiteName(ev.Site)
		if strings.HasPrefix(name, "scope:") {
			return
		}
		if w := pt.lookup(name); w != nil {
			w.rng = intervals.R(ev.Addr, ev.Size)
			w.have = true
		}

	case trace.KindEpochBegin:
		pt.inEpoch = true
		pt.logged = pt.logged[:0]

	case trace.KindEpochEnd:
		pt.inEpoch = false
		pt.logged = pt.logged[:0]

	case trace.KindTxLogAdd:
		// PMTest's TX checkers flag double-logging of annotated objects.
		r := intervals.R(ev.Addr, ev.Size)
		watched := false
		for i := range pt.watched {
			if pt.watched[i].have && pt.watched[i].rng.Overlaps(r) {
				watched = true
				break
			}
		}
		if !watched {
			return
		}
		for _, prev := range pt.logged {
			if prev.Overlaps(r) {
				pt.rep.Add(report.Bug{
					Type: report.RedundantLogging,
					Addr: ev.Addr, Size: ev.Size, Seq: ev.Seq, Site: ev.Site,
					Message: "annotated object logged twice in one transaction",
				})
				return
			}
		}
		pt.logged = append(pt.logged, r)

	case trace.KindEnd:
		pt.finish()
	}
}

func (pt *PMTest) finish() {
	if pt.ended {
		return
	}
	pt.ended = true
	for i := range pt.watched {
		w := &pt.watched[i]
		if w.written() && !w.durable {
			msg := "annotated variable " + w.name + " never flushed"
			if w.flushed {
				msg = "annotated variable " + w.name + " flushed but not fenced"
			}
			pt.rep.Add(report.Bug{
				Type: report.NoDurability,
				Addr: w.rng.Addr, Size: w.rng.Size, Seq: w.lastSeq, Site: w.site,
				Message: msg,
			})
		}
	}
}

// Report finalizes and returns the bug report.
func (pt *PMTest) Report() *report.Report {
	pt.finish()
	return pt.rep
}
