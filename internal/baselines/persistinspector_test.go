package baselines

import (
	"testing"

	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
)

func TestPersistenceInspectorDetectsCoreTypes(t *testing.T) {
	pi := NewPersistenceInspector()
	rep := feed(pi, func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(512)
		c.Store64(a, 1) // no durability
		c.Store64(a+64, 1)
		c.Store64(a+64, 2) // multiple overwrites
		c.Persist(a+64, 8)
		c.Store64(a+128, 1)
		c.Flush(a+128, 8)
		c.Flush(a+128, 8) // redundant flush
		c.Fence()
	})
	for _, typ := range []report.BugType{
		report.NoDurability, report.MultipleOverwrites, report.RedundantFlush,
	} {
		if !rep.Has(typ) {
			t.Errorf("persistence inspector missed %s:\n%s", typ, rep.Summary())
		}
	}
	if pi.Name() != "persistence-inspector" {
		t.Errorf("name = %q", pi.Name())
	}
}

func TestPersistenceInspectorCleanProgram(t *testing.T) {
	rep := feed(NewPersistenceInspector(), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		for i := 0; i < 5; i++ {
			c.Store64(a, uint64(i))
			c.Persist(a, 8)
		}
	})
	if rep.Len() != 0 {
		t.Fatalf("false positives:\n%s", rep.Summary())
	}
}

func TestPersistenceInspectorEpochAware(t *testing.T) {
	rep := feed(NewPersistenceInspector(), func(c *pmem.Ctx, p *pmem.Pool) {
		a := p.Alloc(64)
		c.EpochBegin()
		c.Store64(a, 1)
		c.Store64(a, 2) // legal inside a transaction
		c.Persist(a, 8)
		c.EpochEnd()
	})
	if rep.Has(report.MultipleOverwrites) {
		t.Fatalf("in-TX overwrite flagged:\n%s", rep.Summary())
	}
}

func TestPersistenceInspectorPostMortem(t *testing.T) {
	// Nothing is reported until the analysis runs.
	pi := NewPersistenceInspector()
	p := pmem.New(1 << 12)
	p.Attach(pi)
	p.Ctx().Store64(p.Base(), 1)
	if len(pi.rep.Bugs) != 0 {
		t.Fatal("bugs reported before analysis")
	}
	p.End()
	if !pi.Report().Has(report.NoDurability) {
		t.Fatal("post-mortem analysis missed the bug")
	}
	// Report is idempotent and the buffer is released.
	if pi.events != nil {
		t.Fatal("event buffer retained after analysis")
	}
	n := pi.Report().Len()
	if pi.Report().Len() != n {
		t.Fatal("report not idempotent")
	}
}
