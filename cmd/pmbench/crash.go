package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/harness"
)

// crashOpts carries the crash experiment's flags.
type crashOpts struct {
	json       bool
	out        string
	minSpeedup float64
	ops        int
	stride     int
	workers    int
	workloads  []string
}

// crashArtifact is the BENCH_crash.json schema: per-engine wall-clock and
// images-checked for each workload, plus per-workload and aggregate speedups
// of the record-once engines over exhaustive re-execution, so successive CI
// runs form a perf trajectory for the crash-space explorer.
type crashArtifact struct {
	Experiment             string                `json:"experiment"`
	Timestamp              string                `json:"timestamp"`
	CPUs                   int                   `json:"cpus"`
	Workers                int                   `json:"workers"`
	Repeats                int                   `json:"repeats"`
	Ops                    int                   `json:"ops"`
	Stride                 int                   `json:"stride"`
	Results                []harness.CrashResult `json:"results"`
	ParallelSpeedups       map[string]float64    `json:"parallel_speedups"`
	ReducedSpeedups        map[string]float64    `json:"reduced_speedups"`
	GeomeanParallelSpeedup float64               `json:"geomean_parallel_speedup"`
	GeomeanReducedSpeedup  float64               `json:"geomean_reduced_speedup"`
}

// crashExp measures crash-space exploration three ways per workload —
// exhaustive serial re-execution, the record-once engine with a checker
// worker pool, and the same engine with pruning and deduplication — after
// the harness has verified all three report the identical failure set. The
// sanity gates are structural: the reduced engine must check strictly fewer
// images than the exhaustive reference on every workload, and -minspeedup
// (when set) bounds the geomean parallel speedup.
func crashExp(opts crashOpts) error {
	fmt.Println("\n=== Crash-space exploration: serial vs record-once parallel vs +reducers ===")
	fmt.Printf("%-12s %-18s %8s %8s %8s %8s %8s %12s %10s\n",
		"workload", "engine", "events", "points", "images", "pruned", "dedup", "time", "speedup")

	art := crashArtifact{
		Experiment:       "crash",
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		CPUs:             runtime.NumCPU(),
		Workers:          opts.workers,
		Repeats:          harness.Repeats,
		Ops:              opts.ops,
		Stride:           opts.stride,
		ParallelSpeedups: map[string]float64{},
		ReducedSpeedups:  map[string]float64{},
	}
	logPar, logRed := 0.0, 0.0
	for _, workload := range opts.workloads {
		rs, err := harness.MeasureCrash(workload, opts.ops, opts.stride, opts.workers)
		if err != nil {
			return err
		}
		serial, parallel, reduced := rs[0], rs[1], rs[2]
		if reduced.ImagesChecked >= serial.ImagesChecked {
			return fmt.Errorf("crash %s: reducers checked %d images, not below the exhaustive %d",
				workload, reduced.ImagesChecked, serial.ImagesChecked)
		}
		parSpeed := float64(serial.Nanos) / float64(parallel.Nanos)
		redSpeed := float64(serial.Nanos) / float64(reduced.Nanos)
		art.Results = append(art.Results, rs...)
		art.ParallelSpeedups[workload] = parSpeed
		art.ReducedSpeedups[workload] = redSpeed
		logPar += math.Log(parSpeed)
		logRed += math.Log(redSpeed)
		for _, r := range rs {
			mark := ""
			switch r.Engine {
			case "parallel":
				mark = fmt.Sprintf("%9.2fx", parSpeed)
			case "parallel+reducers":
				mark = fmt.Sprintf("%9.2fx", redSpeed)
			}
			fmt.Printf("%-12s %-18s %8d %8d %8d %8d %8d %12s %10s\n",
				r.Workload, r.Engine, r.Events, r.Points, r.ImagesChecked,
				r.PrunedPoints, r.DedupImages, time.Duration(r.Nanos).Round(time.Microsecond), mark)
		}
	}
	art.GeomeanParallelSpeedup = math.Exp(logPar / float64(len(opts.workloads)))
	art.GeomeanReducedSpeedup = math.Exp(logRed / float64(len(opts.workloads)))
	fmt.Printf("geomean speedup over exhaustive: parallel %.2fx, +reducers %.2fx (cpus: %d, workers: %d)\n",
		art.GeomeanParallelSpeedup, art.GeomeanReducedSpeedup, art.CPUs, art.Workers)

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_crash.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minSpeedup > 0 && art.GeomeanParallelSpeedup < opts.minSpeedup {
		return fmt.Errorf("crash: geomean parallel speedup %.2fx below required %.2fx",
			art.GeomeanParallelSpeedup, opts.minSpeedup)
	}
	return nil
}
