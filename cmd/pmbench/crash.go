package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/harness"
)

// crashOpts carries the crash experiment's flags.
type crashOpts struct {
	json       bool
	out        string
	minSpeedup float64
	// minCowScale, when > 0, fails the experiment unless the geomean
	// speedup of copy-on-write over deep-copy image materialization at the
	// largest sweep size reaches the bound (the crash_image_scaling gate;
	// CI runs it as a soft gate).
	minCowScale float64
	ops         int
	stride      int
	workers     int
	// maxSnapDecay, when > 0, fails the experiment if the geomean snapshot
	// decay — COW points/sec at the smallest sweep size over points/sec at
	// the largest — exceeds the bound. With chunk-shared page tables the
	// per-image cost is O(dirty) in table slots too, so points/sec should
	// decay sublinearly with pool size (the bound is far below the size
	// ratio); CI runs it as a soft gate.
	maxSnapDecay float64
	// minSegScale, when > 0, fails the experiment unless the geomean
	// images/sec speedup of the fork-parallel explorer at segGate segments
	// over one segment reaches the bound. Only meaningful on multi-core
	// hosts — at one CPU the segments time-slice and the expected value is
	// ~1x — so CI runs it as a soft gate on a multi-core runner.
	minSegScale float64
	// segCounts are the segment counts of the fork-parallel sweep; segGate
	// is the count the -minsegscale gate is evaluated at.
	segCounts []int
	segGate   int
	// sweepSizesMiB are the pool sizes of the crash-image scaling sweep;
	// sweepPoints caps crash points per sweep cell so the op count, not the
	// point count, stays fixed across sizes. sweepDeepLimitMiB stops
	// deep-copy baseline rows above that size (0 = sweep it everywhere):
	// O(pool) images at gigabyte pools add minutes of wall clock and no
	// information.
	sweepSizesMiB     []int
	sweepPoints       int
	sweepDeepLimitMiB int
	workloads         []string
}

// crashArtifact is the BENCH_crash.json schema: per-engine wall-clock and
// images-checked for each workload, plus per-workload and aggregate speedups
// of the record-once engines over exhaustive re-execution, so successive CI
// runs form a perf trajectory for the crash-space explorer.
type crashArtifact struct {
	Experiment             string                `json:"experiment"`
	Timestamp              string                `json:"timestamp"`
	CPUs                   int                   `json:"cpus"`
	Workers                int                   `json:"workers"`
	Repeats                int                   `json:"repeats"`
	Ops                    int                   `json:"ops"`
	Stride                 int                   `json:"stride"`
	Results                []harness.CrashResult `json:"results"`
	ParallelSpeedups       map[string]float64    `json:"parallel_speedups"`
	ReducedSpeedups        map[string]float64    `json:"reduced_speedups"`
	GeomeanParallelSpeedup float64               `json:"geomean_parallel_speedup"`
	GeomeanReducedSpeedup  float64               `json:"geomean_reduced_speedup"`
	Scaling                *crashScaling         `json:"crash_image_scaling,omitempty"`
	SegmentScaling         *crashSegScaling      `json:"segment_scaling,omitempty"`
}

// crashScaling is the pool-size sweep section of the artifact: COW vs
// deep-copy image materialization at growing pool sizes with the op count
// fixed, plus the per-size and largest-size speedup summaries the
// crash_image_scaling CI gate reads.
type crashScaling struct {
	SizesMiB  []int `json:"sizes_mib"`
	MaxPoints int   `json:"max_points"`
	// DeepCopyLimitMiB is the largest size the deep-copy baseline was swept
	// at; COW and flat rows cover every size.
	DeepCopyLimitMiB int                         `json:"deepcopy_limit_mib"`
	Results          []harness.CrashScalingPoint `json:"results"`
	// CowSpeedups maps "workload/<size>MiB" to deep-copy time over COW time
	// (sizes within the deep-copy limit only).
	CowSpeedups map[string]float64 `json:"cow_speedups"`
	// ChunkSpeedups maps "workload/<size>MiB" to flat-table time over
	// chunked COW time — the pointer-work the two-level tables remove.
	ChunkSpeedups map[string]float64 `json:"chunk_speedups"`
	// GeomeanCowSpeedupLargest aggregates the speedups at the largest
	// deep-copy-swept size across workloads — the number -mincowscale
	// bounds.
	GeomeanCowSpeedupLargest float64 `json:"geomean_cow_speedup_largest"`
	// CowFlatness maps workload to COW points/sec at the largest size over
	// points/sec at the smallest: 1.0 is perfectly flat scaling.
	CowFlatness map[string]float64 `json:"cow_flatness"`
	// SnapDecay maps workload to the inverse of CowFlatness — points/sec at
	// the smallest size over the largest, the number -maxsnapdecay bounds.
	SnapDecay map[string]float64 `json:"snap_decay"`
	// GeomeanSnapDecay aggregates SnapDecay across workloads.
	GeomeanSnapDecay float64 `json:"geomean_snap_decay"`
}

// crashSegScaling is the fork-parallel segment sweep section of the artifact:
// the reducer engine re-run at each segment count with everything else fixed,
// plus the per-workload and geomean images/sec speedups at GateSegments
// segments over one — the number -minsegscale bounds (CI soft-gates it: on a
// single CPU the segments time-slice and the expected speedup is ~1x).
type crashSegScaling struct {
	Segments     []int                       `json:"segments"`
	GateSegments int                         `json:"gate_segments"`
	Results      []harness.CrashSegmentPoint `json:"results"`
	// SegSpeedups maps workload to images/sec at GateSegments segments over
	// images/sec at the first swept count (one segment).
	SegSpeedups map[string]float64 `json:"seg_speedups"`
	// GeomeanSegSpeedup aggregates SegSpeedups across workloads.
	GeomeanSegSpeedup float64 `json:"geomean_seg_speedup"`
}

// crashExp measures crash-space exploration six ways per workload —
// exhaustive serial re-execution, the record-once engine with a checker
// worker pool, the same engine with pruning and deduplication, the reducer
// engine over the flat-table and deep-copy snapshot baselines, and the
// fork-parallel segmented dispatcher — after the harness has verified all six
// report the identical failure set. The sanity gates are structural: the
// reduced engine must check strictly fewer images than the exhaustive
// reference on every workload, the segmented engine's reducer counters must
// equal the single-segment engine's, and -minspeedup (when set) bounds the
// geomean parallel speedup.
func crashExp(opts crashOpts) error {
	fmt.Println("\n=== Crash-space exploration: serial vs record-once parallel vs +reducers ===")
	fmt.Printf("%-12s %-18s %8s %8s %8s %8s %8s %12s %10s\n",
		"workload", "engine", "events", "points", "images", "pruned", "dedup", "time", "speedup")

	art := crashArtifact{
		Experiment:       "crash",
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		CPUs:             runtime.NumCPU(),
		Workers:          opts.workers,
		Repeats:          harness.Repeats,
		Ops:              opts.ops,
		Stride:           opts.stride,
		ParallelSpeedups: map[string]float64{},
		ReducedSpeedups:  map[string]float64{},
	}
	logPar, logRed := 0.0, 0.0
	for _, workload := range opts.workloads {
		rs, err := harness.MeasureCrash(workload, opts.ops, opts.stride, opts.workers)
		if err != nil {
			return err
		}
		serial, parallel, reduced, flat, deepcopy, segmented := rs[0], rs[1], rs[2], rs[3], rs[4], rs[5]
		if reduced.ImagesChecked >= serial.ImagesChecked {
			return fmt.Errorf("crash %s: reducers checked %d images, not below the exhaustive %d",
				workload, reduced.ImagesChecked, serial.ImagesChecked)
		}
		if segmented.ImagesChecked != reduced.ImagesChecked || segmented.PrunedPoints != reduced.PrunedPoints ||
			segmented.DedupImages != reduced.DedupImages {
			return fmt.Errorf("crash %s: segmented counters (%d images, %d pruned, %d deduped) != single-segment (%d, %d, %d)",
				workload, segmented.ImagesChecked, segmented.PrunedPoints, segmented.DedupImages,
				reduced.ImagesChecked, reduced.PrunedPoints, reduced.DedupImages)
		}
		parSpeed := float64(serial.Nanos) / float64(parallel.Nanos)
		redSpeed := float64(serial.Nanos) / float64(reduced.Nanos)
		flatSpeed := float64(serial.Nanos) / float64(flat.Nanos)
		deepSpeed := float64(serial.Nanos) / float64(deepcopy.Nanos)
		segSpeed := float64(serial.Nanos) / float64(segmented.Nanos)
		art.Results = append(art.Results, rs...)
		art.ParallelSpeedups[workload] = parSpeed
		art.ReducedSpeedups[workload] = redSpeed
		logPar += math.Log(parSpeed)
		logRed += math.Log(redSpeed)
		for _, r := range rs {
			mark := ""
			switch r.Engine {
			case "parallel":
				mark = fmt.Sprintf("%9.2fx", parSpeed)
			case "parallel+reducers":
				mark = fmt.Sprintf("%9.2fx", redSpeed)
			case "flat+reducers":
				mark = fmt.Sprintf("%9.2fx", flatSpeed)
			case "deepcopy+reducers":
				mark = fmt.Sprintf("%9.2fx", deepSpeed)
			case "segmented+reducers":
				mark = fmt.Sprintf("%9.2fx", segSpeed)
			}
			fmt.Printf("%-12s %-18s %8d %8d %8d %8d %8d %12s %10s\n",
				r.Workload, r.Engine, r.Events, r.Points, r.ImagesChecked,
				r.PrunedPoints, r.DedupImages, time.Duration(r.Nanos).Round(time.Microsecond), mark)
		}
	}
	art.GeomeanParallelSpeedup = math.Exp(logPar / float64(len(opts.workloads)))
	art.GeomeanReducedSpeedup = math.Exp(logRed / float64(len(opts.workloads)))
	fmt.Printf("geomean speedup over exhaustive: parallel %.2fx, +reducers %.2fx (cpus: %d, workers: %d)\n",
		art.GeomeanParallelSpeedup, art.GeomeanReducedSpeedup, art.CPUs, art.Workers)

	// Pool-size sweep: COW vs deep-copy image materialization, op count and
	// crash-point cap fixed, only the pool size growing. COW images cost
	// O(dirty pages), so their points/sec should be near-flat; the deep-copy
	// baseline pays O(pool) per image and falls off.
	if len(opts.sweepSizesMiB) > 0 {
		sc, err := crashScalingSweep(opts)
		if err != nil {
			return err
		}
		art.Scaling = sc
	}

	// Segment sweep: the same reducer exploration dispatched over 1..N forked
	// segments. Counters are segment-count-invariant by construction (the
	// harness re-verifies), so the sweep isolates pure dispatch parallelism.
	if len(opts.segCounts) > 0 {
		ss, err := crashSegmentSweep(opts)
		if err != nil {
			return err
		}
		art.SegmentScaling = ss
	}

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_crash.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minSpeedup > 0 && art.GeomeanParallelSpeedup < opts.minSpeedup {
		return fmt.Errorf("crash: geomean parallel speedup %.2fx below required %.2fx",
			art.GeomeanParallelSpeedup, opts.minSpeedup)
	}
	if opts.minCowScale > 0 && art.Scaling != nil {
		if art.Scaling.GeomeanCowSpeedupLargest < opts.minCowScale {
			return fmt.Errorf("crash: geomean cow speedup %.2fx at %dMiB below required %.2fx",
				art.Scaling.GeomeanCowSpeedupLargest, art.Scaling.DeepCopyLimitMiB, opts.minCowScale)
		}
	}
	if opts.maxSnapDecay > 0 && art.Scaling != nil {
		if art.Scaling.GeomeanSnapDecay > opts.maxSnapDecay {
			return fmt.Errorf("crash: geomean snapshot decay %.2fx across %d->%dMiB above allowed %.2fx",
				art.Scaling.GeomeanSnapDecay, opts.sweepSizesMiB[0],
				opts.sweepSizesMiB[len(opts.sweepSizesMiB)-1], opts.maxSnapDecay)
		}
	}
	if opts.minSegScale > 0 && art.SegmentScaling != nil {
		if art.SegmentScaling.GeomeanSegSpeedup < opts.minSegScale {
			return fmt.Errorf("crash: geomean segment speedup %.2fx at %d segments below required %.2fx",
				art.SegmentScaling.GeomeanSegSpeedup, art.SegmentScaling.GateSegments, opts.minSegScale)
		}
	}
	return nil
}

// crashSegmentSweep runs and prints the fork-parallel segment sweep,
// returning the artifact section the -minsegscale gate reads.
func crashSegmentSweep(opts crashOpts) (*crashSegScaling, error) {
	fmt.Println("\n--- Segment scaling: fork-parallel dispatch at 1..N segments ---")
	fmt.Printf("%-12s %9s %8s %8s %8s %12s %12s %10s\n",
		"workload", "segments", "images", "pruned", "dedup", "time", "images/s", "scaling")
	gate := opts.segCounts[len(opts.segCounts)-1]
	for _, s := range opts.segCounts {
		if s == opts.segGate {
			gate = s
		}
	}
	ss := &crashSegScaling{
		Segments:     opts.segCounts,
		GateSegments: gate,
		SegSpeedups:  map[string]float64{},
	}
	logSpeed := 0.0
	for _, workload := range opts.workloads {
		pts, err := harness.MeasureCrashSegments(workload, opts.ops, opts.stride,
			opts.workers, opts.segCounts)
		if err != nil {
			return nil, err
		}
		ss.Results = append(ss.Results, pts...)
		baseRate, gateRate := 0.0, 0.0
		for i, r := range pts {
			if i == 0 {
				baseRate = r.ImagesPerSec
			}
			if r.Segments == gate {
				gateRate = r.ImagesPerSec
			}
			scaling := ""
			if baseRate > 0 {
				scaling = fmt.Sprintf("%9.2fx", r.ImagesPerSec/baseRate)
			}
			fmt.Printf("%-12s %9d %8d %8d %8d %12s %12.0f %10s\n",
				r.Workload, r.Segments, r.Images, r.PrunedPoints, r.DedupImages,
				time.Duration(r.Nanos).Round(time.Microsecond), r.ImagesPerSec, scaling)
		}
		speed := gateRate / baseRate
		ss.SegSpeedups[workload] = speed
		logSpeed += math.Log(speed)
	}
	ss.GeomeanSegSpeedup = math.Exp(logSpeed / float64(len(opts.workloads)))
	fmt.Printf("geomean images/sec speedup at %d segments over 1: %.2fx (cpus: %d)\n",
		gate, ss.GeomeanSegSpeedup, runtime.NumCPU())
	return ss, nil
}

// crashScalingSweep runs and prints the pool-size sweep, returning the
// artifact section the crash_image_scaling gates read.
func crashScalingSweep(opts crashOpts) (*crashScaling, error) {
	fmt.Println("\n--- Crash-image scaling: chunked COW vs flat tables vs deep-copy across pool sizes ---")
	fmt.Printf("%-12s %8s %-10s %8s %12s %12s %14s %10s %10s\n",
		"workload", "pool", "engine", "images", "time", "points/s", "pages z/s/p", "cow-gain", "chunk-gain")
	// deepLargest is the largest size the deep-copy baseline is swept at —
	// the size the -mincowscale gate is evaluated at.
	deepLargest := opts.sweepSizesMiB[len(opts.sweepSizesMiB)-1]
	if opts.sweepDeepLimitMiB > 0 {
		deepLargest = 0
		for _, mib := range opts.sweepSizesMiB {
			if mib <= opts.sweepDeepLimitMiB {
				deepLargest = mib
			}
		}
	}
	sc := &crashScaling{
		SizesMiB:         opts.sweepSizesMiB,
		MaxPoints:        opts.sweepPoints,
		DeepCopyLimitMiB: deepLargest,
		CowSpeedups:      map[string]float64{},
		ChunkSpeedups:    map[string]float64{},
		CowFlatness:      map[string]float64{},
		SnapDecay:        map[string]float64{},
	}
	logLargest, logDecay := 0.0, 0.0
	for _, workload := range opts.workloads {
		pts, err := harness.MeasureCrashScaling(workload, opts.ops, opts.stride,
			opts.workers, opts.sweepPoints, opts.sweepSizesMiB, opts.sweepDeepLimitMiB)
		if err != nil {
			return nil, err
		}
		sc.Results = append(sc.Results, pts...)
		// Index the rows by (size, engine): every size has cow and flat
		// rows, sizes within the deep-copy limit also have a deepcopy row.
		type cell = harness.CrashScalingPoint
		bySize := map[int]map[string]cell{}
		for _, r := range pts {
			if bySize[r.PoolMiB] == nil {
				bySize[r.PoolMiB] = map[string]cell{}
			}
			bySize[r.PoolMiB][r.Engine] = r
		}
		var firstCow, lastCow cell
		for i, mib := range opts.sweepSizesMiB {
			row := bySize[mib]
			cow := row["cow"]
			if i == 0 {
				firstCow = cow
			}
			lastCow = cow
			key := fmt.Sprintf("%s/%dMiB", workload, mib)
			chunkGain := float64(row["flat"].Nanos) / float64(cow.Nanos)
			sc.ChunkSpeedups[key] = chunkGain
			cowGain := 0.0
			if deep, ok := row["deepcopy"]; ok {
				cowGain = float64(deep.Nanos) / float64(cow.Nanos)
				sc.CowSpeedups[key] = cowGain
				if mib == deepLargest {
					logLargest += math.Log(cowGain)
				}
			}
			for _, eng := range []string{"cow", "flat", "deepcopy"} {
				r, ok := row[eng]
				if !ok {
					continue
				}
				mark, cmark := "", ""
				if eng == "cow" {
					cmark = fmt.Sprintf("%9.2fx", chunkGain)
					if cowGain > 0 {
						mark = fmt.Sprintf("%9.2fx", cowGain)
					}
				}
				fmt.Printf("%-12s %5dMiB %-10s %8d %12s %12.1f %14s %10s %10s\n",
					r.Workload, r.PoolMiB, r.Engine, r.Images,
					time.Duration(r.Nanos).Round(time.Microsecond), r.PointsPerSec,
					fmt.Sprintf("%d/%d/%d", r.ZeroPages, r.SharedPages, r.PrivatePages), mark, cmark)
			}
		}
		sc.CowFlatness[workload] = lastCow.PointsPerSec / firstCow.PointsPerSec
		sc.SnapDecay[workload] = firstCow.PointsPerSec / lastCow.PointsPerSec
		logDecay += math.Log(sc.SnapDecay[workload])
	}
	sc.GeomeanCowSpeedupLargest = math.Exp(logLargest / float64(len(opts.workloads)))
	sc.GeomeanSnapDecay = math.Exp(logDecay / float64(len(opts.workloads)))
	largest := opts.sweepSizesMiB[len(opts.sweepSizesMiB)-1]
	fmt.Printf("geomean cow speedup over deep-copy at %dMiB: %.2fx\n", deepLargest, sc.GeomeanCowSpeedupLargest)
	fmt.Printf("geomean snapshot decay %d->%dMiB: %.2fx\n", opts.sweepSizesMiB[0], largest, sc.GeomeanSnapDecay)
	for _, workload := range opts.workloads {
		fmt.Printf("  %s cow flatness (%d->%dMiB points/sec ratio): %.2f, chunk gain at %dMiB: %.2fx\n",
			workload, opts.sweepSizesMiB[0], largest, sc.CowFlatness[workload],
			largest, sc.ChunkSpeedups[fmt.Sprintf("%s/%dMiB", workload, largest)])
	}
	return sc, nil
}
