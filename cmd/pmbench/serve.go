package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/harness"
)

// serveOpts carries the serve experiment's artifact/gate flags.
type serveOpts struct {
	json bool
	out  string
	// minEventRate, when > 0, fails the experiment unless the best
	// aggregate server-side events/sec across the client sweep reaches the
	// bound. Absolute throughput is host-dependent; CI runs this as a soft
	// gate.
	minEventRate float64
	opsPerClient int
	clients      []int
	drain        string
	shards       int
}

// serveArtifact is the BENCH_serve.json schema: one row per concurrent
// client count, each a fleet of tenants streaming recorded memslap-driven
// memcached traces into a fresh pmserved instance. Every row's first repeat
// verifies the served reports byte-identical to offline replays before any
// number is kept — a served throughput figure with wrong reports would be
// worthless.
type serveArtifact struct {
	Experiment   string                `json:"experiment"`
	Timestamp    string                `json:"timestamp"`
	CPUs         int                   `json:"cpus"`
	Repeats      int                   `json:"repeats"`
	OpsPerClient int                   `json:"ops_per_client"`
	Drain        string                `json:"drain"`
	Shards       int                   `json:"shards,omitempty"`
	Results      []harness.ServeResult `json:"results"`
	// BestEventsPerSec is the highest aggregate rate in the sweep — the
	// headline number the -mineventrate gate bounds.
	BestEventsPerSec float64 `json:"best_events_per_sec"`
}

// serveExp measures pmserved under a sweep of concurrent client counts.
func serveExp(opts serveOpts) error {
	fmt.Println("\n=== Detection service: pmserved under concurrent streaming clients ===")
	fmt.Printf("%-8s %10s %10s %12s %14s %9s\n",
		"clients", "ops/client", "events", "stream time", "events/s", "verified")

	art := serveArtifact{
		Experiment:   "serve",
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		CPUs:         runtime.NumCPU(),
		Repeats:      harness.Repeats,
		OpsPerClient: opts.opsPerClient,
		Drain:        opts.drain,
		Shards:       opts.shards,
	}
	for _, clients := range opts.clients {
		res, err := harness.MeasureServe(clients, opts.opsPerClient, opts.drain, opts.shards)
		if err != nil {
			return err
		}
		art.Results = append(art.Results, res)
		if res.EventsPerSec > art.BestEventsPerSec {
			art.BestEventsPerSec = res.EventsPerSec
		}
		fmt.Printf("%-8d %10d %10d %12s %14.0f %9v\n",
			res.Clients, res.OpsPerClient, res.Events,
			time.Duration(res.Nanos).Round(time.Microsecond), res.EventsPerSec, res.Verified)
	}
	fmt.Printf("best aggregate throughput: %.0f events/sec (cpus: %d)\n",
		art.BestEventsPerSec, art.CPUs)

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_serve.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minEventRate > 0 && art.BestEventsPerSec < opts.minEventRate {
		return fmt.Errorf("serve: best aggregate throughput %.0f events/sec below required %.0f",
			art.BestEventsPerSec, opts.minEventRate)
	}
	return nil
}
