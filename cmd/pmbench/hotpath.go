package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"pmdebugger/internal/harness"
)

// hotpathArtifact is the BENCH_hotpath.json schema: one entry per
// (trace, mode) measurement plus the aggregate speedup, so successive CI
// runs form a perf trajectory for the detector's per-event hot loop.
type hotpathArtifact struct {
	Experiment     string                  `json:"experiment"`
	Timestamp      string                  `json:"timestamp"`
	Rounds         int                     `json:"rounds"`
	Repeats        int                     `json:"repeats"`
	Results        []harness.HotPathResult `json:"results"`
	Speedups       map[string]float64      `json:"speedups"`
	GeomeanSpeedup float64                 `json:"geomean_speedup"`
}

// hotpath runs the cache-line-index microbenchmarks: each synthetic trace is
// replayed with the indexed engine and the DisableIndex scan fallback
// (reports verified byte-identical first), the per-mode throughput is
// printed, and optionally the JSON artifact is written and the minimum
// speedup gate enforced.
func hotpath(opts hotpathOpts) error {
	fmt.Println("\n=== Hot path: cache-line index + MRU probe vs interval scan ===")
	fmt.Printf("%-16s %-8s %10s %12s %14s %10s\n",
		"trace", "mode", "events", "time", "events/s", "speedup")

	art := hotpathArtifact{
		Experiment: "hotpath",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Rounds:     opts.rounds,
		Repeats:    harness.Repeats,
		Speedups:   map[string]float64{},
	}
	logSum := 0.0
	for _, kind := range harness.HotPathKinds() {
		pair, err := harness.MeasureHotPath(kind, opts.rounds)
		if err != nil {
			return err
		}
		indexed, scan := pair[0], pair[1]
		speedup := scan.EventsPerSec
		if indexed.EventsPerSec > 0 {
			speedup = float64(scan.Nanos) / float64(indexed.Nanos)
		}
		art.Results = append(art.Results, indexed, scan)
		art.Speedups[kind] = speedup
		logSum += math.Log(speedup)
		for _, r := range pair {
			mark := ""
			if r.Mode == "indexed" {
				mark = fmt.Sprintf("%9.2fx", speedup)
			}
			fmt.Printf("%-16s %-8s %10d %12s %14.0f %10s\n",
				r.Kind, r.Mode, r.Events,
				time.Duration(r.Nanos).Round(time.Microsecond), r.EventsPerSec, mark)
		}
	}
	art.GeomeanSpeedup = math.Exp(logSum / float64(len(harness.HotPathKinds())))
	fmt.Printf("geomean speedup (indexed over scan): %.2fx\n", art.GeomeanSpeedup)

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_hotpath.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minSpeedup > 0 && art.GeomeanSpeedup < opts.minSpeedup {
		return fmt.Errorf("hotpath: indexed engine geomean speedup %.2fx below required %.2fx",
			art.GeomeanSpeedup, opts.minSpeedup)
	}
	return nil
}
