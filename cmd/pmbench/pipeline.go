package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/harness"
)

// pipelineArtifact is the BENCH_pipeline.json schema: the phase-split
// measurements of both delivery modes per workload plus per-workload and
// aggregate speedups, so successive CI runs form a perf trajectory for the
// asynchronous detection pipeline.
//
// Speedups compare the live phase — the workload's execution time with the
// detector attached, the part an application's clients observe. The drain
// phase (the pipeline's deferred analysis at Pool.End) is reported
// alongside in every result and in total_speedups, so nothing is hidden:
// on a machine with spare cores the drain overlaps the live phase; on this
// single-CPU container it runs after it.
type pipelineArtifact struct {
	Experiment          string                   `json:"experiment"`
	Timestamp           string                   `json:"timestamp"`
	CPUs                int                      `json:"cpus"`
	Threads             int                      `json:"threads"`
	Repeats             int                      `json:"repeats"`
	MemcachedSetRatio   float64                  `json:"memcached_set_ratio"`
	MemcachedValueSize  int                      `json:"memcached_value_size"`
	Results             []harness.PipelineResult `json:"results"`
	Speedups            map[string]float64       `json:"speedups"`       // live phase
	TotalSpeedups       map[string]float64       `json:"total_speedups"` // live + drain
	GeomeanSpeedup      float64                  `json:"geomean_speedup"`
	GeomeanTotalSpeedup float64                  `json:"geomean_total_speedup"`
}

// pipelineExp measures live-run throughput with PMDebugger attached inline
// versus through trace.Pipeline on the multi-threaded memcached workload
// and the redis LRU test. Delivery equivalence (byte-identical reports on
// an identical recorded stream) is verified by the harness before any
// timing. Optionally writes the JSON artifact and enforces the minimum
// live-speedup gate.
func pipelineExp(opts pipelineOpts, memOps, redisKeys int) error {
	fmt.Println("\n=== Async pipeline: inline vs pipelined detection (live runs, PMDebugger) ===")
	fmt.Printf("%-12s %-10s %8s %8s %12s %12s %12s %12s %10s\n",
		"workload", "mode", "threads", "ops", "live", "drain", "total", "live ops/s", "speedup")

	art := pipelineArtifact{
		Experiment:         "pipeline",
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		CPUs:               runtime.NumCPU(),
		Threads:            opts.threads,
		Repeats:            harness.Repeats,
		MemcachedSetRatio:  1.0,
		MemcachedValueSize: 16,
		Speedups:           map[string]float64{},
		TotalSpeedups:      map[string]float64{},
	}
	rows := []struct {
		workload string
		ops      int
		threads  int
	}{
		{"memcached", memOps, opts.threads},
		{"redis", redisKeys, 1},
	}
	logSum, logSumTotal := 0.0, 0.0
	for _, row := range rows {
		pair, err := harness.MeasurePipeline(row.workload, row.ops, row.threads)
		if err != nil {
			return err
		}
		inline, piped := pair[0], pair[1]
		speedup := float64(inline.LiveNanos) / float64(piped.LiveNanos)
		totalSpeedup := float64(inline.Nanos) / float64(piped.Nanos)
		art.Results = append(art.Results, inline, piped)
		art.Speedups[row.workload] = speedup
		art.TotalSpeedups[row.workload] = totalSpeedup
		logSum += math.Log(speedup)
		logSumTotal += math.Log(totalSpeedup)
		for _, r := range pair {
			mark := ""
			if r.Mode == "pipelined" {
				mark = fmt.Sprintf("%9.2fx", speedup)
			}
			fmt.Printf("%-12s %-10s %8d %8d %12s %12s %12s %12.0f %10s\n",
				r.Workload, r.Mode, r.Threads, r.Ops,
				time.Duration(r.LiveNanos).Round(time.Microsecond),
				time.Duration(r.DrainNanos).Round(time.Microsecond),
				time.Duration(r.Nanos).Round(time.Microsecond), r.OpsPerSec, mark)
		}
	}
	art.GeomeanSpeedup = math.Exp(logSum / float64(len(rows)))
	art.GeomeanTotalSpeedup = math.Exp(logSumTotal / float64(len(rows)))
	fmt.Printf("geomean live speedup (pipelined over inline): %.2fx  (live+drain: %.2fx, cpus: %d)\n",
		art.GeomeanSpeedup, art.GeomeanTotalSpeedup, art.CPUs)

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_pipeline.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minSpeedup > 0 && art.GeomeanSpeedup < opts.minSpeedup {
		return fmt.Errorf("pipeline: geomean live speedup %.2fx below required %.2fx",
			art.GeomeanSpeedup, opts.minSpeedup)
	}
	return nil
}
