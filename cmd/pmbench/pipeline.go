package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/harness"
)

// pipelineArtifact is the BENCH_pipeline.json schema: the phase-split
// measurements of all three delivery modes per workload plus per-workload
// and aggregate speedups, so successive CI runs form a perf trajectory for
// the asynchronous detection pipeline.
//
// Speedups compare the live phase — the workload's execution time with the
// detector attached, the part an application's clients observe. The drain
// phase (the deferred analysis at Pool.End) is reported alongside in every
// result and in total_speedups, so nothing is hidden: on a machine with
// spare cores the drain overlaps the live phase; on a single-CPU container
// it runs after it.
//
// Sharded scaling is a drain-phase metric: live is pure slab staging in
// both asynchronous modes, and the fan-out divides the deferred analysis
// across shard consumers. sharded_drain_scaling is therefore the
// single-consumer drain time over the sharded drain time, recorded only
// for rows that genuinely sharded (fallback rows carry no scaling entry —
// they measured the same single consumer twice). On a single-CPU host the
// expected value is ~1x (the shards time-slice); the scaling shows on
// multi-core CI.
type pipelineArtifact struct {
	Experiment          string                   `json:"experiment"`
	Timestamp           string                   `json:"timestamp"`
	CPUs                int                      `json:"cpus"`
	Threads             int                      `json:"threads"`
	Repeats             int                      `json:"repeats"`
	MemcachedSetRatio   float64                  `json:"memcached_set_ratio"`
	MemcachedValueSize  int                      `json:"memcached_value_size"`
	Results             []harness.PipelineResult `json:"results"`
	Speedups            map[string]float64       `json:"speedups"`        // pipelined live over inline live
	TotalSpeedups       map[string]float64       `json:"total_speedups"`  // pipelined, live + drain
	ShardedSpeedups     map[string]float64       `json:"sharded_speedups"`// sharded live over inline live
	ShardedDrainScaling map[string]float64       `json:"sharded_drain_scaling,omitempty"`
	ShardedFallbacks    map[string]string        `json:"sharded_fallbacks,omitempty"` // workload -> why not sharded
	GeomeanSpeedup      float64                  `json:"geomean_speedup"`
	GeomeanTotalSpeedup float64                  `json:"geomean_total_speedup"`
	// GeomeanShardScaling aggregates sharded_drain_scaling over the rows
	// that genuinely sharded (0 when none did).
	GeomeanShardScaling float64 `json:"geomean_shard_scaling,omitempty"`
}

// pipelineExp measures live-run throughput with PMDebugger attached
// inline, through a single-consumer trace.Pipeline, and through a
// per-strand-sharded trace.ShardedPipeline, on the multi-threaded
// memcached workload (strict and strand-section variants) and the redis
// LRU test. Delivery equivalence (byte-identical reports on an identical
// recorded stream, all modes) is verified by the harness before any
// timing — a mismatch is a hard error regardless of gates. Optionally
// writes the JSON artifact and enforces the minimum live-speedup and
// shard-scaling gates.
func pipelineExp(opts pipelineOpts, memOps, redisKeys int) error {
	fmt.Println("\n=== Async pipeline: inline vs pipelined vs sharded detection (live runs, PMDebugger) ===")
	fmt.Printf("%-18s %-10s %7s %7s %12s %12s %12s %12s %9s %s\n",
		"workload", "mode", "threads", "ops", "live", "drain", "total", "live ops/s", "speedup", "shards")

	art := pipelineArtifact{
		Experiment:          "pipeline",
		Timestamp:           time.Now().UTC().Format(time.RFC3339),
		CPUs:                runtime.NumCPU(),
		Threads:             opts.threads,
		Repeats:             harness.Repeats,
		MemcachedSetRatio:   1.0,
		MemcachedValueSize:  16,
		Speedups:            map[string]float64{},
		TotalSpeedups:       map[string]float64{},
		ShardedSpeedups:     map[string]float64{},
		ShardedDrainScaling: map[string]float64{},
		ShardedFallbacks:    map[string]string{},
	}
	rows := []struct {
		workload string
		ops      int
		threads  int
	}{
		{"memcached", memOps, opts.threads},
		{"memcached-strand", memOps, opts.threads},
		{"redis", redisKeys, 1},
	}
	logSum, logSumTotal := 0.0, 0.0
	logSumScale, scaleRows := 0.0, 0
	for _, row := range rows {
		results, err := harness.MeasurePipeline(row.workload, row.ops, row.threads)
		if err != nil {
			return err
		}
		inline, piped, sharded := results[0], results[1], results[2]
		speedup := float64(inline.LiveNanos) / float64(piped.LiveNanos)
		totalSpeedup := float64(inline.Nanos) / float64(piped.Nanos)
		shardedSpeedup := float64(inline.LiveNanos) / float64(sharded.LiveNanos)
		art.Results = append(art.Results, results...)
		art.Speedups[row.workload] = speedup
		art.TotalSpeedups[row.workload] = totalSpeedup
		art.ShardedSpeedups[row.workload] = shardedSpeedup
		logSum += math.Log(speedup)
		logSumTotal += math.Log(totalSpeedup)
		if sharded.Fallback {
			art.ShardedFallbacks[row.workload] = "configuration not shardable; sharded row measured the single-consumer fallback"
		} else if sharded.DrainNanos > 0 {
			scale := float64(piped.DrainNanos) / float64(sharded.DrainNanos)
			art.ShardedDrainScaling[row.workload] = scale
			logSumScale += math.Log(scale)
			scaleRows++
		}
		for _, r := range results {
			mark, shardsCol := "", ""
			switch r.Mode {
			case "pipelined":
				mark = fmt.Sprintf("%8.2fx", speedup)
			case "sharded":
				mark = fmt.Sprintf("%8.2fx", shardedSpeedup)
				shardsCol = fmt.Sprintf("%d", r.Shards)
				if r.Fallback {
					shardsCol += " (FALLBACK: not shardable)"
				}
			}
			fmt.Printf("%-18s %-10s %7d %7d %12s %12s %12s %12.0f %9s %s\n",
				r.Workload, r.Mode, r.Threads, r.Ops,
				time.Duration(r.LiveNanos).Round(time.Microsecond),
				time.Duration(r.DrainNanos).Round(time.Microsecond),
				time.Duration(r.Nanos).Round(time.Microsecond), r.OpsPerSec, mark, shardsCol)
		}
	}
	art.GeomeanSpeedup = math.Exp(logSum / float64(len(rows)))
	art.GeomeanTotalSpeedup = math.Exp(logSumTotal / float64(len(rows)))
	if scaleRows > 0 {
		art.GeomeanShardScaling = math.Exp(logSumScale / float64(scaleRows))
	}
	fmt.Printf("geomean live speedup (pipelined over inline): %.2fx  (live+drain: %.2fx, cpus: %d)\n",
		art.GeomeanSpeedup, art.GeomeanTotalSpeedup, art.CPUs)
	if scaleRows > 0 {
		fmt.Printf("geomean sharded drain scaling (single consumer over %d-shard fan-out): %.2fx\n",
			opts.threads, art.GeomeanShardScaling)
	} else {
		fmt.Println("no workload row genuinely sharded; shard-scaling gate not applicable")
	}
	for w, why := range art.ShardedFallbacks {
		fmt.Printf("note: %s sharded row fell back — %s\n", w, why)
	}

	if opts.json {
		out := opts.out
		if out == "" {
			out = "BENCH_pipeline.json"
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if opts.minSpeedup > 0 && art.GeomeanSpeedup < opts.minSpeedup {
		return fmt.Errorf("pipeline: geomean live speedup %.2fx below required %.2fx",
			art.GeomeanSpeedup, opts.minSpeedup)
	}
	if opts.minShardScale > 0 {
		if scaleRows == 0 {
			return fmt.Errorf("pipeline: -minshardscale set but no workload row genuinely sharded")
		}
		if art.GeomeanShardScaling < opts.minShardScale {
			return fmt.Errorf("pipeline: geomean sharded drain scaling %.2fx below required %.2fx (cpus: %d)",
				art.GeomeanShardScaling, opts.minShardScale, art.CPUs)
		}
	}
	return nil
}
