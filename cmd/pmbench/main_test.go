package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunExperiments(t *testing.T) {
	hp := hotpathOpts{rounds: 2}
	for _, exp := range []string{"table1", "table5", "fig11", "reorg"} {
		if err := run(exp, 200, 200, 200, hp); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run("nope", 10, 10, 10, hp); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestHotpathArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := run("hotpath", 0, 0, 0, hotpathOpts{json: true, out: out, rounds: 2}); err != nil {
		t.Fatalf("hotpath: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art hotpathArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Results) != 2*len(art.Speedups) || art.GeomeanSpeedup <= 0 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
}
