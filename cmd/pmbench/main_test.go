package main

import "testing"

func TestRunExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "table5", "fig11", "reorg"} {
		if err := run(exp, 200, 200, 200); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run("nope", 10, 10, 10); err == nil {
		t.Error("unknown experiment accepted")
	}
}
