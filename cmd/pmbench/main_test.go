package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunExperiments(t *testing.T) {
	hp := hotpathOpts{rounds: 2}
	pl := pipelineOpts{threads: 2}
	cr := crashOpts{ops: 3, stride: 5, workers: 2, workloads: []string{"txpair"}}
	for _, exp := range []string{"table1", "table5", "fig11", "reorg"} {
		if err := run(exp, 200, 200, 200, hp, pl, cr, serveOpts{}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run("nope", 10, 10, 10, hp, pl, cr, serveOpts{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCrashArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_crash.json")
	cr := crashOpts{json: true, out: out, ops: 4, stride: 5, workers: 2,
		workloads: []string{"b_tree", "txpair"},
		sweepSizesMiB: []int{1, 2, 4}, sweepPoints: 3, sweepDeepLimitMiB: 2,
		segCounts: []int{1, 2, 4}, segGate: 4}
	if err := run("crash", 0, 0, 0, hotpathOpts{}, pipelineOpts{}, cr, serveOpts{}); err != nil {
		t.Fatalf("crash: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art crashArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Results) != 6*len(art.ParallelSpeedups) ||
		art.GeomeanParallelSpeedup <= 0 || art.GeomeanReducedSpeedup <= 0 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
	for _, r := range art.Results {
		if r.Engine == "parallel+reducers" && r.PrunedPoints == 0 && r.DedupImages == 0 {
			t.Fatalf("%s reducers engine reduced nothing: %+v", r.Workload, r)
		}
		if r.Engine == "segmented+reducers" {
			if r.Segments != cr.workers {
				t.Fatalf("%s segmented row has segments=%d, want %d: %+v", r.Workload, r.Segments, cr.workers, r)
			}
			if r.RecordNanos <= 0 || r.SnapshotNanos <= 0 || r.CheckNanos <= 0 {
				t.Fatalf("%s segmented row missing phase counters: %+v", r.Workload, r)
			}
		}
		if r.Engine == "serial" && (r.RecordNanos != 0 || r.ReplayNanos != 0) {
			t.Fatalf("%s serial row reports record-once phases: %+v", r.Workload, r)
		}
	}
	// The sweep section: cow + flat rows per size per workload, deepcopy
	// rows only at sizes within the deep-copy limit, with both gates'
	// geomeans populated.
	if art.Scaling == nil {
		t.Fatal("crash_image_scaling section missing")
	}
	deepSizes := 0
	for _, mib := range cr.sweepSizesMiB {
		if mib <= cr.sweepDeepLimitMiB {
			deepSizes++
		}
	}
	want := (2*len(cr.sweepSizesMiB) + deepSizes) * len(cr.workloads)
	if len(art.Scaling.Results) != want {
		t.Fatalf("scaling rows = %d, want %d", len(art.Scaling.Results), want)
	}
	for _, r := range art.Scaling.Results {
		if r.Engine == "deepcopy" && r.PoolMiB > cr.sweepDeepLimitMiB {
			t.Fatalf("deepcopy row above the sweep limit: %+v", r)
		}
	}
	if art.Scaling.DeepCopyLimitMiB != 2 {
		t.Fatalf("deepcopy limit = %d, want 2", art.Scaling.DeepCopyLimitMiB)
	}
	if art.Scaling.GeomeanCowSpeedupLargest <= 0 || art.Scaling.GeomeanSnapDecay <= 0 {
		t.Fatalf("scaling geomeans missing: %+v", art.Scaling)
	}
	if len(art.Scaling.ChunkSpeedups) != len(cr.sweepSizesMiB)*len(cr.workloads) {
		t.Fatalf("chunk speedups incomplete: %+v", art.Scaling.ChunkSpeedups)
	}
	// The segment sweep: one row per (workload, segment count), counters
	// invariant in the segment count, the gate geomean populated.
	if art.SegmentScaling == nil {
		t.Fatal("segment_scaling section missing")
	}
	if len(art.SegmentScaling.Results) != len(cr.segCounts)*len(cr.workloads) {
		t.Fatalf("segment rows = %d, want %d", len(art.SegmentScaling.Results),
			len(cr.segCounts)*len(cr.workloads))
	}
	images := map[string]int{}
	for _, r := range art.SegmentScaling.Results {
		if prev, ok := images[r.Workload]; ok && prev != r.Images {
			t.Fatalf("%s images vary with segment count: %d vs %d", r.Workload, prev, r.Images)
		}
		images[r.Workload] = r.Images
		if r.ImagesPerSec <= 0 {
			t.Fatalf("segment row missing rate: %+v", r)
		}
	}
	if art.SegmentScaling.GateSegments != 4 || art.SegmentScaling.GeomeanSegSpeedup <= 0 ||
		len(art.SegmentScaling.SegSpeedups) != len(cr.workloads) {
		t.Fatalf("segment gate summary incomplete: %+v", art.SegmentScaling)
	}
}

func TestServeArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	sv := serveOpts{json: true, out: out, opsPerClient: 300, clients: []int{1, 2},
		drain: "lazy", shards: 2}
	if err := run("serve", 0, 0, 0, hotpathOpts{}, pipelineOpts{}, crashOpts{}, sv); err != nil {
		t.Fatalf("serve: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art serveArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Results) != 2 || art.BestEventsPerSec <= 0 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
	for _, r := range art.Results {
		if !r.Verified {
			t.Fatalf("row not verified against offline replay: %+v", r)
		}
		if r.Events == 0 || r.EventsPerSec <= 0 {
			t.Fatalf("row did not move events: %+v", r)
		}
	}
	// An unreachable throughput gate must fail the experiment.
	sv.minEventRate = 1e18
	if err := run("serve", 0, 0, 0, hotpathOpts{}, pipelineOpts{}, crashOpts{}, sv); err == nil {
		t.Fatal("impossible -mineventrate accepted")
	}
}

func TestHotpathArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	hp := hotpathOpts{json: true, out: out, rounds: 2}
	if err := run("hotpath", 0, 0, 0, hp, pipelineOpts{}, crashOpts{}, serveOpts{}); err != nil {
		t.Fatalf("hotpath: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art hotpathArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Results) != 2*len(art.Speedups) || art.GeomeanSpeedup <= 0 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
}

func TestPipelineArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	pl := pipelineOpts{json: true, out: out, threads: 4}
	if err := run("pipeline", 0, 500, 500, hotpathOpts{}, pl, crashOpts{}, serveOpts{}); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var art pipelineArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	// Three rows (inline, pipelined, sharded) per workload, and a sharded
	// speedup entry alongside every pipelined one.
	if len(art.Results) != 3*len(art.Speedups) || art.GeomeanSpeedup <= 0 {
		t.Fatalf("artifact incomplete: %+v", art)
	}
	if len(art.ShardedSpeedups) != len(art.Speedups) {
		t.Fatalf("sharded speedups missing: %+v", art.ShardedSpeedups)
	}
	if art.Threads != 4 {
		t.Fatalf("artifact threads = %d, want 4", art.Threads)
	}
	for _, r := range art.Results {
		if r.Workload == "memcached" && r.Threads != 4 {
			t.Fatalf("memcached measured with %d threads", r.Threads)
		}
	}
	// The strand-section memcached row genuinely shards; strict memcached
	// and epoch redis must be flagged as fallbacks with a scaling entry
	// only for the genuine row.
	if _, ok := art.ShardedDrainScaling["memcached-strand"]; !ok {
		t.Fatalf("memcached-strand should carry a drain-scaling entry: %+v", art.ShardedDrainScaling)
	}
	for _, w := range []string{"memcached", "redis"} {
		if _, ok := art.ShardedFallbacks[w]; !ok {
			t.Fatalf("%s sharded row should be recorded as a fallback: %+v", w, art.ShardedFallbacks)
		}
		if _, ok := art.ShardedDrainScaling[w]; ok {
			t.Fatalf("%s fell back and must not claim drain scaling", w)
		}
	}
	if art.GeomeanShardScaling <= 0 {
		t.Fatalf("geomean shard scaling missing: %+v", art.GeomeanShardScaling)
	}
}
