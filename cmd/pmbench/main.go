// Command pmbench regenerates the paper's performance tables and figures as
// text tables.
//
// Usage:
//
//	pmbench -experiment fig8          # slowdowns, micro-benchmarks + real workloads
//	pmbench -experiment table5        # speedups over pmemcheck
//	pmbench -experiment sota          # §7.2 XFDetector / PMTest comparison
//	pmbench -experiment fig10         # memcached thread scalability
//	pmbench -experiment fig11         # average AVL tree nodes per fence interval
//	pmbench -experiment reorg         # §7.5 tree reorganization counts
//	pmbench -experiment parallel      # sharded strand-trace replay speedup
//	pmbench -experiment hotpath       # cache-line index vs interval-scan hot loop
//	pmbench -experiment pipeline      # inline vs async-pipelined live detection
//	pmbench -experiment crash         # crash-space exploration engine comparison
//	pmbench -experiment serve         # pmserved under concurrent streaming clients
//	pmbench -experiment all
//
// -scale shrinks or grows every operation count (default 1.0); absolute
// numbers depend on the host, the paper's shape does not.
//
// `-experiment hotpath` and `-experiment pipeline` additionally honor -json
// (write a BENCH_hotpath.json / BENCH_pipeline.json perf-trajectory
// artifact), -out (artifact path override) and -minspeedup (exit non-zero
// when the geometric-mean speedup falls below the bound — the CI smoke
// gates). `-experiment pipeline` drives the multi-threaded memcached
// workload with -threads application threads (default 4), which is also
// the detector shard count for the sharded delivery rows; -minshardscale
// additionally gates the geomean sharded drain scaling (only meaningful on
// multi-core hosts — report equality across delivery modes is always a
// hard error, independent of the gates).
//
// `-experiment crash` honors the same -json/-out/-minspeedup flags (artifact
// BENCH_crash.json) and is sized with -crashops, -crashstride and
// -crashworkers; it compares exhaustive serial re-execution with the
// record-once parallel explorer — with and without its reducers, and over
// the flat-table and deep-copy snapshot baselines, and with fork-parallel
// segmented dispatch — and fails when any engine's failure set diverges
// from the serial reference or the reducers do not check strictly fewer
// images. The pool-size sweep (16→1024 MiB, deep-copy rows capped by
// -sweepdeeplimit) feeds two soft gates: -mincowscale bounds the geomean
// chunked-COW-over-deepcopy speedup from below, -maxsnapdecay bounds the
// geomean decay of COW points/sec across the sweep from above. The segment
// sweep (1/2/4/8 segments per workload) feeds -minsegscale, which bounds
// the geomean images/sec speedup at 4 segments over 1 from below — only
// meaningful on multi-core hosts (at one CPU the segments time-slice and
// the expected value is ~1x), so CI runs it as a soft gate.
//
// `-experiment serve` honors -json/-out (artifact BENCH_serve.json) and is
// sized with -serveops (memslap operations per client), -servedrain and
// -serveshards; it sweeps concurrent client counts {1,2,4,8} against a
// fresh pmserved per measurement, verifying every tenant's served report
// byte-identical to an offline replay before keeping a number.
// -mineventrate bounds the best aggregate server-side events/sec from below
// (host-dependent, so CI runs it as a soft gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmdebugger/internal/core"
	"pmdebugger/internal/harness"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
	"pmdebugger/internal/workloads"
)

// hotpathOpts carries the hotpath experiment's artifact/gate flags.
type hotpathOpts struct {
	json       bool
	out        string
	minSpeedup float64
	rounds     int
}

// pipelineOpts carries the pipeline experiment's artifact/gate flags.
type pipelineOpts struct {
	json       bool
	out        string
	minSpeedup float64
	// minShardScale, when > 0, fails the experiment unless the geomean
	// sharded drain scaling (single-consumer drain over sharded drain,
	// genuinely sharded rows only) reaches the bound. Meaningful on
	// multi-core hosts; on a single CPU the shards time-slice and the
	// expected value is ~1x.
	minShardScale float64
	threads       int
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1, fig8, table5, sota, fig10, fig11, reorg, parallel, hotpath, pipeline, crash, serve, or all")
		inserts    = flag.Int("n", 10000, "micro-benchmark insert count (paper: 1K/10K/100K)")
		memOps     = flag.Int("memops", 10000, "memcached operation count (paper: 10K-100K)")
		redisKeys  = flag.Int("rediskeys", 10000, "redis LRU-test key count")
		repeats    = flag.Int("repeats", 3, "runs per (benchmark, tool); the minimum time is kept")
		jsonOut    = flag.Bool("json", false, "hotpath/pipeline: also write the JSON artifact")
		outPath    = flag.String("out", "", "hotpath/pipeline: JSON artifact path override")
		minSpeed   = flag.Float64("minspeedup", 0, "hotpath/pipeline: fail unless the geomean speedup >= this")
		rounds     = flag.Int("rounds", 24, "hotpath: fence rounds per synthetic trace")
		threads    = flag.Int("threads", 4, "pipeline: memcached application threads (and detector shards)")
		minShard   = flag.Float64("minshardscale", 0, "pipeline: fail unless the geomean sharded drain scaling >= this (multi-core hosts)")
		crashOps   = flag.Int("crashops", 20, "crash: operations per crashed program")
		crashStr   = flag.Int("crashstride", 3, "crash: event-boundary stride")
		crashWrk   = flag.Int("crashworkers", 4, "crash: checker workers for the record-once engine")
		minCow     = flag.Float64("mincowscale", 0, "crash: fail unless the geomean cow-over-deepcopy speedup at the largest deep-copy-swept size >= this")
		maxDecay   = flag.Float64("maxsnapdecay", 0, "crash: fail if the geomean snapshot decay (cow points/sec, smallest over largest sweep size) exceeds this")
		deepLimit  = flag.Int("sweepdeeplimit", 256, "crash: largest pool size (MiB) the deep-copy baseline is swept at (0 = all sizes)")
		minSegScl  = flag.Float64("minsegscale", 0, "crash: fail unless the geomean images/sec speedup at 4 segments over 1 >= this (multi-core hosts)")
		serveOps   = flag.Int("serveops", 2000, "serve: memslap operations per streaming client")
		serveDrain = flag.String("servedrain", "lazy", "serve: session drain discipline, eager or lazy")
		serveShard = flag.Int("serveshards", 4, "serve: per-session shard request (strand-model traces)")
		minEvRate  = flag.Float64("mineventrate", 0, "serve: fail unless the best aggregate events/sec >= this")
	)
	flag.Parse()
	harness.Repeats = *repeats
	hp := hotpathOpts{json: *jsonOut, out: *outPath, minSpeedup: *minSpeed, rounds: *rounds}
	pl := pipelineOpts{json: *jsonOut, out: *outPath, minSpeedup: *minSpeed,
		minShardScale: *minShard, threads: *threads}
	cr := crashOpts{json: *jsonOut, out: *outPath, minSpeedup: *minSpeed,
		minCowScale: *minCow, maxSnapDecay: *maxDecay, minSegScale: *minSegScl,
		ops: *crashOps, stride: *crashStr, workers: *crashWrk,
		sweepSizesMiB: []int{16, 64, 256, 1024}, sweepPoints: 16,
		sweepDeepLimitMiB: *deepLimit,
		segCounts:         []int{1, 2, 4, 8}, segGate: 4,
		workloads:         []string{"b_tree", "txpair", "redis"}}
	sv := serveOpts{json: *jsonOut, out: *outPath, minEventRate: *minEvRate,
		opsPerClient: *serveOps, clients: []int{1, 2, 4, 8},
		drain: *serveDrain, shards: *serveShard}
	if err := run(*experiment, *inserts, *memOps, *redisKeys, hp, pl, cr, sv); err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, inserts, memOps, redisKeys int, hp hotpathOpts, pl pipelineOpts, cr crashOpts, sv serveOpts) error {
	switch experiment {
	case "table1":
		return table1()
	case "fig8":
		return fig8(inserts, memOps, redisKeys)
	case "table5":
		return table5(inserts, memOps, redisKeys)
	case "sota":
		return sota(inserts, memOps)
	case "fig10":
		return fig10(memOps)
	case "fig11":
		return fig11(inserts, memOps, redisKeys)
	case "reorg":
		return reorg(inserts)
	case "parallel":
		return parallelReplay(inserts)
	case "hotpath":
		return hotpath(hp)
	case "pipeline":
		return pipelineExp(pl, memOps, redisKeys)
	case "crash":
		return crashExp(cr)
	case "serve":
		return serveExp(sv)
	case "all":
		for _, fn := range []func() error{
			table1,
			func() error { return fig8(inserts, memOps, redisKeys) },
			func() error { return table5(inserts, memOps, redisKeys) },
			func() error { return sota(inserts, memOps) },
			func() error { return fig10(memOps) },
			func() error { return fig11(inserts, memOps, redisKeys) },
			func() error { return reorg(inserts) },
			func() error { return parallelReplay(inserts) },
			func() error { return hotpath(hp) },
			func() error { return pipelineExp(pl, memOps, redisKeys) },
			func() error { return crashExp(cr) },
			func() error { return serveExp(sv) },
		} {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// table1 prints the qualitative comparison of Table 1. Every row is backed
// by an implementation in internal/baselines (plus internal/core), so the
// quantitative columns are demonstrated by the other experiments.
func table1() error {
	fmt.Println("=== Table 1: comparison between existing work and PMDebugger ===")
	fmt.Printf("%-22s %-10s %-9s %-8s %-8s %s\n",
		"", "perf.ovh.", "coverage", "target", "effort", "relaxed models?")
	rows := [][6]string{
		{"pmtest", "small", "low", "any", "high", "no"},
		{"pmemcheck", "high", "medium", "PMDK", "low", "no"},
		{"persistence-inspector", "high", "medium", "PMDK", "low", "no"},
		{"yat", "high", "medium", "PMFS", "low", "no  (not implemented: PMFS-specific)"},
		{"xfdetector", "high", "medium", "any", "low", "no"},
		{"pmdebugger", "small", "high", "any", "low", "yes"},
	}
	for _, r := range rows {
		fmt.Printf("%-22s %-10s %-9s %-8s %-8s %s\n", r[0], r[1], r[2], r[3], r[4], r[5])
	}
	return nil
}

// allRows measures every benchmark under the given tools.
func allRows(inserts, memOps, redisKeys int, tools []harness.Tool) ([]harness.Row, error) {
	var rows []harness.Row
	for _, name := range harness.MicroBenchNames() {
		row, err := harness.MeasureMicro(name, inserts, tools)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	mem, err := harness.MeasureMemcached(memOps, 1, tools)
	if err != nil {
		return nil, err
	}
	rows = append(rows, mem)
	rd, err := harness.MeasureRedis(redisKeys, tools)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rd)
	return rows, nil
}

func fig8(inserts, memOps, redisKeys int) error {
	fmt.Println("=== Figure 8: slowdown over native (Nulgrind / PMDebugger / Pmemcheck) ===")
	// The paper sweeps 1K/10K/100K inserts; sweep around the configured n.
	for _, scale := range []int{inserts / 10, inserts, inserts * 10} {
		if scale < 100 {
			continue
		}
		fmt.Printf("\n--- %d operations ---\n", scale)
		rows, err := allRows(scale, scale, scale, harness.Fig8Tools())
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatSlowdownTable(rows, harness.Fig8Tools()))
	}
	return nil
}

func table5(inserts, memOps, redisKeys int) error {
	fmt.Println("\n=== Table 5: PMDebugger speedup over Pmemcheck ===")
	rows, err := allRows(inserts, memOps, redisKeys, harness.Fig8Tools())
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatTable5(rows))
	return nil
}

func sota(inserts, memOps int) error {
	fmt.Println("\n=== §7.2: comparison with XFDetector and PMTest (slowdown over native) ===")
	tools := harness.AllTools()
	var rows []harness.Row
	for _, name := range harness.MicroBenchNames() {
		if name == "r_tree" {
			continue // the paper excludes r_tree from this comparison
		}
		row, err := harness.MeasureMicro(name, inserts, tools)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	mem, err := harness.MeasureMemcached(memOps, 1, tools)
	if err != nil {
		return err
	}
	rows = append(rows, mem)
	fmt.Print(harness.FormatSlowdownTable(rows, tools))
	return nil
}

func fig10(memOps int) error {
	fmt.Println("\n=== Figure 10: memcached slowdown vs thread count ===")
	fmt.Printf("%-8s %12s %12s\n", "threads", "pmdebugger", "pmemcheck")
	for _, threads := range []int{1, 2, 4, 6} {
		row, err := harness.MeasureMemcached(memOps, threads,
			[]harness.Tool{harness.PMDebugger, harness.Pmemcheck})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %11.2fx %11.2fx\n", threads,
			row.Slowdown(harness.PMDebugger), row.Slowdown(harness.Pmemcheck))
	}
	return nil
}

func fig11(inserts, memOps, redisKeys int) error {
	fmt.Println("\n=== Figure 11: average AVL tree nodes per fence interval ===")
	rows, err := allRows(inserts, memOps, redisKeys,
		[]harness.Tool{harness.PMDebugger, harness.Pmemcheck})
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatFig11(rows))
	return nil
}

// parallelReplay records a synth_strand trace and replays it three ways —
// per-event, batched, and sharded-parallel — printing replay throughput and
// the speedup of each mode over the per-event baseline. The parallel report
// is checked against the sequential one before timing anything.
func parallelReplay(inserts int) error {
	fmt.Println("\n=== Sharded parallel replay: synth_strand trace ===")
	f, err := workloads.Lookup("synth_strand")
	if err != nil {
		return err
	}
	app, pm, err := workloads.Build(f, inserts)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(inserts * 16)
	pm.Attach(rec)
	if err := workloads.RunInserts(app, inserts, 42); err != nil {
		return err
	}
	if err := app.Close(); err != nil {
		return err
	}
	pm.End()

	cfg := core.Config{Model: rules.Strand}
	workers := runtime.GOMAXPROCS(0)

	seqDet := core.New(cfg)
	rec.Replay(seqDet)
	want := seqDet.Report()
	got := core.ReplayParallel(rec.Events, cfg, workers)
	if want.Summary() != got.Summary() {
		return fmt.Errorf("parallel report differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
			want.Summary(), got.Summary())
	}

	modes := []struct {
		name string
		run  func()
	}{
		{"per-event", func() {
			d := core.New(cfg)
			for _, ev := range rec.Events {
				d.HandleEvent(ev)
			}
			d.Report()
		}},
		{"batched", func() {
			d := core.New(cfg)
			trace.ReplayEvents(rec.Events, d)
			d.Report()
		}},
		{fmt.Sprintf("parallel(%d)", workers), func() {
			core.ReplayParallel(rec.Events, cfg, workers)
		}},
	}
	fmt.Printf("trace: %d events (%d inserts), %d workers, reports identical\n",
		rec.Len(), inserts, workers)
	fmt.Printf("%-14s %12s %14s %10s\n", "mode", "time", "events/s", "speedup")
	var base time.Duration
	for _, m := range modes {
		best := time.Duration(0)
		for r := 0; r < harness.Repeats; r++ {
			start := time.Now()
			m.run()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		if base == 0 {
			base = best
		}
		rate := float64(rec.Len()) / best.Seconds()
		fmt.Printf("%-14s %12s %14.0f %9.2fx\n", m.name, best.Round(time.Microsecond), rate,
			float64(base)/float64(best))
	}
	return nil
}

func reorg(inserts int) error {
	fmt.Println("\n=== §7.5: tree reorganization counts ===")
	var rows []harness.Row
	for _, name := range harness.MicroBenchNames() {
		row, err := harness.MeasureMicro(name, inserts,
			[]harness.Tool{harness.PMDebugger, harness.Pmemcheck})
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Print(harness.FormatReorgs(rows))
	return nil
}
