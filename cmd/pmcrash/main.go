// Command pmcrash runs Yat/Agamotto-style systematic crash testing
// (package crashtest) against the transactional workloads: it crashes the
// program at instruction boundaries, materializes each post-crash
// persistent image, runs recovery, and validates the recovered structure.
//
// Usage:
//
//	pmcrash -workload b_tree -n 25 -stride 13
//	pmcrash -workload queue -n 40 -policy random -seeds 5
//	pmcrash -workload txpair -strictlog -policy random
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "b_tree", "b_tree, queue, or txpair")
		n         = flag.Int("n", 25, "operations in the crashed program")
		stride    = flag.Int("stride", 1, "test every Nth event boundary (1 = exhaustive)")
		maxPoints = flag.Int("max", 0, "cap on crash points (0 = unlimited)")
		policy    = flag.String("policy", "drop", "line persistence at the crash: drop, apply, random")
		seeds     = flag.Int("seeds", 3, "seeds per crash point for -policy random")
		strictLog = flag.Bool("strictlog", false, "use the strict (drain-per-snapshot) undo log")
	)
	flag.Parse()
	if err := run(*workload, *n, *stride, *maxPoints, *policy, *seeds, *strictLog); err != nil {
		fmt.Fprintln(os.Stderr, "pmcrash:", err)
		os.Exit(1)
	}
}

func run(workload string, n, stride, maxPoints int, policyName string, nseeds int, strictLog bool) error {
	cfg := crashtest.Config{PoolSize: 1 << 21, Stride: stride, MaxPoints: maxPoints}
	switch policyName {
	case "drop":
		cfg.Policy = pmem.CrashDropPending
	case "apply":
		cfg.Policy = pmem.CrashApplyPending
	case "random":
		cfg.Policy = pmem.CrashRandomPending
		for s := 1; s <= nseeds; s++ {
			cfg.Seeds = append(cfg.Seeds, int64(s*7))
		}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}

	prog, check, err := buildScenario(workload, n, strictLog)
	if err != nil {
		return err
	}
	res, err := crashtest.Run(prog, check, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d events, %d crash points, %d images checked\n",
		workload, res.TotalEvents, res.Points, res.Images)
	if len(res.Failures) == 0 {
		fmt.Println("all recoveries consistent")
		return nil
	}
	fmt.Printf("%d INCONSISTENT recoveries:\n", len(res.Failures))
	for i, f := range res.Failures {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}
	return nil
}

func buildScenario(workload string, n int, strictLog bool) (crashtest.Program, crashtest.Checker, error) {
	recovered := func(img *pmem.Pool) (*pmdk.Pool, bool, error) {
		p, err := pmdk.Open(img)
		if err != nil {
			if strings.Contains(err.Error(), "bad pool magic") {
				return nil, false, nil // crash before the pool existed
			}
			return nil, false, err
		}
		return p, true, nil
	}

	switch workload {
	case "b_tree":
		var rootCell uint64
		prog := func(pm *pmem.Pool) error {
			p, err := pmdk.Create(pm, 4096)
			if err != nil {
				return err
			}
			p.SetStrictLog(strictLog)
			bt, err := workloads.NewBTree(p)
			if err != nil {
				return err
			}
			rootCell, _ = p.Root()
			for k := uint64(0); k < uint64(n); k++ {
				if err := bt.Insert(k, k+1000); err != nil {
					return err
				}
			}
			return nil
		}
		check := func(img *pmem.Pool) error {
			p, ok, err := recovered(img)
			if err != nil || !ok {
				return err
			}
			if p.Ctx().Load64(rootCell) == 0 {
				return nil
			}
			bt := workloads.ReattachBTree(p, rootCell)
			for k := uint64(0); k < uint64(n); k++ {
				v, present := bt.Get(k)
				if !present {
					for k2 := k + 1; k2 < uint64(n); k2++ {
						if _, p2 := bt.Get(k2); p2 {
							return fmt.Errorf("non-prefix recovery: %d missing, %d present", k, k2)
						}
					}
					return nil
				}
				if v != k+1000 {
					return fmt.Errorf("key %d has value %d", k, v)
				}
			}
			return nil
		}
		return prog, check, nil

	case "queue":
		var rootCell uint64
		prog := func(pm *pmem.Pool) error {
			p, err := pmdk.Create(pm, 4096)
			if err != nil {
				return err
			}
			p.SetStrictLog(strictLog)
			q, err := workloads.NewQueue(p, 16)
			if err != nil {
				return err
			}
			rootCell, _ = p.Root()
			for i := 0; i < n; i++ {
				if err := q.Enqueue(uint64(i)); err != nil {
					return err
				}
				if i%3 == 2 {
					if _, err := q.Dequeue(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		check := func(img *pmem.Pool) error {
			p, ok, err := recovered(img)
			if err != nil || !ok {
				return err
			}
			c := p.Ctx()
			capacity := c.Load64(rootCell + 8)
			head := c.Load64(rootCell + 16)
			count := c.Load64(rootCell + 24)
			if capacity == 0 {
				return nil // crash before initialization committed
			}
			if capacity != 16 || head >= capacity || count > capacity {
				return fmt.Errorf("invalid geometry: cap=%d head=%d count=%d", capacity, head, count)
			}
			// FIFO contents must be consecutive integers.
			buf := c.Load64(rootCell)
			var prev uint64
			for i := uint64(0); i < count; i++ {
				v := c.Load64(buf + (head+i)%capacity*8)
				if i > 0 && v != prev+1 {
					return fmt.Errorf("queue not consecutive at %d: %d after %d", i, v, prev)
				}
				prev = v
			}
			return nil
		}
		return prog, check, nil

	case "txpair":
		var root uint64
		prog := func(pm *pmem.Pool) error {
			p, err := pmdk.Create(pm, 64)
			if err != nil {
				return err
			}
			p.SetStrictLog(strictLog)
			root, _ = p.Root()
			for i := uint64(1); i <= uint64(n); i++ {
				tx := p.Begin()
				tx.Set(root, i)
				tx.Set(root+128, i)
				tx.Commit()
			}
			return nil
		}
		check := func(img *pmem.Pool) error {
			p, ok, err := recovered(img)
			if err != nil || !ok {
				return err
			}
			c := p.Ctx()
			if a, b := c.Load64(root), c.Load64(root+128); a != b {
				return fmt.Errorf("torn pair %d/%d", a, b)
			}
			return nil
		}
		return prog, check, nil

	default:
		return nil, nil, fmt.Errorf("unknown crash workload %q", workload)
	}
}
