// Command pmcrash runs Yat/Agamotto-style systematic crash testing
// (package crashtest) against the registered scenarios: it crashes the
// program at instruction boundaries, materializes each post-crash
// persistent image, runs recovery, and validates the recovered structure.
//
// By default it uses the record-once explorer (one program execution, a
// shadow-replay pool, and a bounded checker worker pool); -parallel 0
// selects the exhaustive re-execution reference engine. -segments N splits
// the crash-point list into N contiguous windows, each dispatched by its own
// goroutine from a forked copy-on-write replay pool — the failure set and
// every reducer counter are identical at any segment count.
//
// Usage:
//
//	pmcrash -workload b_tree -n 25 -stride 13 -parallel 4 -prune -dedup
//	pmcrash -workload redis -n 10 -stride 7 -policy random -seeds 5
//	pmcrash -workload memcached -n 8 -stride 9 -parallel 2 -segments 4
//	pmcrash -workload txpair -strictlog -policy random -parallel 0
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmdebugger/internal/crashtest"
	"pmdebugger/internal/crashtest/scenarios"
	"pmdebugger/internal/pmem"
)

func main() {
	var (
		workload  = flag.String("workload", "b_tree", "scenario: b_tree, queue, txpair, redis, or memcached")
		n         = flag.Int("n", 25, "operations in the crashed program")
		stride    = flag.Int("stride", 1, "test every Nth event boundary (1 = exhaustive)")
		maxPoints = flag.Int("max", 0, "cap on crash points (0 = unlimited)")
		policy    = flag.String("policy", "drop", "line persistence at the crash: drop, apply, random")
		seeds     = flag.Int("seeds", 3, "seeds per crash point for -policy random")
		strictLog = flag.Bool("strictlog", false, "use the strict (drain-per-snapshot) undo log")
		parallel  = flag.Int("parallel", 1, "checker workers for the record-once engine (0 = serial re-execution reference)")
		prune     = flag.Bool("prune", false, "prune persistency-irrelevant crash points (record-once engine)")
		dedup     = flag.Bool("dedup", false, "deduplicate identical crash images by content hash (record-once engine)")
		deepCopy  = flag.Bool("deepcopy", false, "materialize crash images with private pages (O(pool) baseline) instead of copy-on-write")
		flat      = flag.Bool("flat", false, "copy page tables at page granularity per image (O(table) baseline) instead of chunk-shared")
		segments  = flag.Int("segments", 1, "fork-parallel dispatch segments for the record-once engine")
	)
	flag.Parse()
	if err := run(*workload, *n, *stride, *maxPoints, *policy, *seeds, *strictLog, *parallel, *prune, *dedup, *deepCopy, *flat, *segments); err != nil {
		fmt.Fprintln(os.Stderr, "pmcrash:", err)
		os.Exit(1)
	}
}

func run(workload string, n, stride, maxPoints int, policyName string, nseeds int, strictLog bool, parallel int, prune, dedup, deepCopy, flat bool, segments int) error {
	cfg := crashtest.Config{PoolSize: 1 << 21, Stride: stride, MaxPoints: maxPoints,
		DeepCopyImages: deepCopy, FlatTables: flat}
	switch policyName {
	case "drop":
		cfg.Policy = pmem.CrashDropPending
	case "apply":
		cfg.Policy = pmem.CrashApplyPending
	case "random":
		cfg.Policy = pmem.CrashRandomPending
		for s := 1; s <= nseeds; s++ {
			cfg.Seeds = append(cfg.Seeds, int64(s*7))
		}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}

	prog, check, err := scenarios.Build(workload, n, strictLog)
	if err != nil {
		return err
	}

	var res *crashtest.Result
	start := time.Now()
	if parallel <= 0 {
		if prune || dedup {
			return fmt.Errorf("-prune and -dedup require the record-once engine (-parallel >= 1)")
		}
		if segments > 1 {
			return fmt.Errorf("-segments requires the record-once engine (-parallel >= 1)")
		}
		res, err = crashtest.RunSerial(prog, check, cfg)
	} else {
		cfg.Workers = parallel
		cfg.Prune = prune
		cfg.Dedup = dedup
		cfg.Segments = segments
		res, err = crashtest.Run(prog, check, cfg)
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d events, %d crash points, %d images checked\n",
		workload, res.TotalEvents, res.Points, res.Images)
	fmt.Printf("%s elapsed, %.1f images/sec\n",
		elapsed.Round(time.Microsecond), float64(res.Images)/elapsed.Seconds())
	if res.PrunedPoints > 0 || res.DedupImages > 0 {
		fmt.Printf("reducers: %d points pruned, %d images deduplicated\n",
			res.PrunedPoints, res.DedupImages)
	}
	if res.RecordNanos > 0 {
		// Phase times are summed across goroutines, so with -parallel or
		// -segments > 1 they can legitimately exceed the wall clock.
		fmt.Printf("phases: record %s, replay %s, snapshot %s, fingerprint %s, check %s\n",
			time.Duration(res.RecordNanos).Round(time.Microsecond),
			time.Duration(res.ReplayNanos).Round(time.Microsecond),
			time.Duration(res.SnapshotNanos).Round(time.Microsecond),
			time.Duration(res.FingerprintNanos).Round(time.Microsecond),
			time.Duration(res.CheckNanos).Round(time.Microsecond))
	}
	if total := res.ZeroPages + res.SharedPages + res.PrivatePages; total > 0 {
		engine := "chunked copy-on-write"
		switch {
		case deepCopy:
			engine = "deep-copy"
		case flat:
			engine = "flat-table copy-on-write"
		}
		fmt.Printf("image pages (%s): %d zero, %d shared, %d private\n",
			engine, res.ZeroPages, res.SharedPages, res.PrivatePages)
	}
	if len(res.Failures) == 0 {
		fmt.Println("all recoveries consistent")
		return nil
	}
	fmt.Printf("%d INCONSISTENT recoveries:\n", len(res.Failures))
	for i, f := range res.Failures {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  %s\n", f)
	}
	return nil
}
