package main

import "testing"

func TestRunScenarios(t *testing.T) {
	if err := run("b_tree", 8, 23, 0, "drop", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("queue", 9, 29, 0, "apply", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run("txpair", 2, 5, 0, "random", 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 5, 1, 0, "drop", 0, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("b_tree", 5, 1, 0, "sideways", 0, false); err == nil {
		t.Error("unknown policy accepted")
	}
}
