package main

import "testing"

func TestRunScenarios(t *testing.T) {
	if err := run("b_tree", 8, 23, 0, "drop", 0, false, 4, true, true, false, false, 4); err != nil {
		t.Fatal(err)
	}
	if err := run("queue", 9, 29, 0, "apply", 0, false, 2, false, true, false, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("txpair", 2, 5, 0, "random", 2, true, 0, false, false, false, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunServerScenarios(t *testing.T) {
	if err := run("redis", 4, 31, 0, "drop", 0, false, 2, true, true, false, false, 2); err != nil {
		t.Fatal(err)
	}
	if err := run("memcached", 3, 37, 0, "drop", 0, false, 2, true, true, false, false, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeepCopyBaseline(t *testing.T) {
	if err := run("b_tree", 6, 23, 0, "drop", 0, false, 2, true, true, true, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlatTablesBaseline(t *testing.T) {
	if err := run("b_tree", 6, 23, 0, "drop", 0, false, 2, true, true, false, true, 2); err != nil {
		t.Fatal(err)
	}
	if err := run("txpair", 2, 5, 0, "random", 2, false, 2, false, false, false, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 5, 1, 0, "drop", 0, false, 1, false, false, false, false, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("b_tree", 5, 1, 0, "sideways", 0, false, 1, false, false, false, false, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("b_tree", 5, 1, 0, "drop", 0, false, 0, true, false, false, false, 1); err == nil {
		t.Error("reducers accepted with the serial engine")
	}
	if err := run("b_tree", 5, 1, 0, "drop", 0, false, 0, false, false, false, false, 4); err == nil {
		t.Error("segments accepted with the serial engine")
	}
}
