package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(300, 100, 300); err != nil {
		t.Fatal(err)
	}
}
