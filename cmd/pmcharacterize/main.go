// Command pmcharacterize regenerates the §3 characterization study
// (Figure 2): the store-to-fence distance distribution, the collective vs.
// dispersed CLF interval classification, and the instruction mix, measured
// over the PMDK micro-benchmarks and YCSB loads A–F against memcached.
//
// Usage:
//
//	pmcharacterize -n 10000 -ycsb-records 5000 -ycsb-ops 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"pmdebugger/internal/harness"
)

func main() {
	var (
		inserts = flag.Int("n", 10000, "micro-benchmark insert count")
		records = flag.Int("ycsb-records", 2000, "YCSB preload record count")
		ops     = flag.Int("ycsb-ops", 10000, "YCSB operation count")
	)
	flag.Parse()
	if err := run(*inserts, *records, *ops); err != nil {
		fmt.Fprintln(os.Stderr, "pmcharacterize:", err)
		os.Exit(1)
	}
}

func run(inserts, records, ops int) error {
	rows, err := harness.CharacterizeAll(inserts, records, ops)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatCharacterization(rows))

	// Summarize the three patterns the design builds on.
	var le3Sum, collSum, storeSum, mruSum float64
	for _, r := range rows {
		le3Sum += r.Result.DistanceLE(3)
		collSum += r.Result.CollectivePercent()
		s, _, _ := r.Result.MixPercent()
		storeSum += s
		mruSum += r.Result.MRULocalPercent()
	}
	n := float64(len(rows))
	fmt.Printf("\nPattern 1: %.1f%% of stores guaranteed within distance 3 (paper: 84.5%%)\n", le3Sum/n)
	fmt.Printf("Pattern 2: %.1f%% of CLF intervals collective (paper: >71%%)\n", collSum/n)
	fmt.Printf("Pattern 3: stores are %.1f%% of the three instructions (paper: >=40.2%%)\n", storeSum/n)
	fmt.Printf("MRU locality: %.1f%% of effective writebacks answerable from the 2 most recent CLF intervals\n", mruSum/n)
	return nil
}
