// Command pmtrace records a workload's instrumented instruction stream to a
// trace file, inspects traces, and replays them through a detector. Trace
// files decouple capture from analysis, so the identical stream can be fed
// to several detectors — the same methodology the benchmark harness uses
// internally for fair comparisons.
//
// Replay is streaming end to end: traces are decoded in pooled batches and
// never materialized, so multi-GB captures replay in constant memory. With
// -parallel, strand-model traces are additionally partitioned along strand
// boundaries and replayed on a shard-per-core worker pool; the merged
// report is identical to the sequential one.
//
// Usage:
//
//	pmtrace -record b_tree -n 10000 -o btree.pmtrace
//	pmtrace -info btree.pmtrace
//	pmtrace -replay btree.pmtrace -detector pmdebugger -model epoch
//	pmtrace -replay strand.pmtrace -model strand -parallel -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
	"pmdebugger/internal/workloads"
)

func main() {
	var (
		record   = flag.String("record", "", "workload to record (a Table 4 benchmark name)")
		n        = flag.Int("n", 10000, "operation count for -record")
		out      = flag.String("o", "trace.pmtrace", "output path for -record")
		info     = flag.String("info", "", "trace file to summarize")
		dump     = flag.String("dump", "", "trace file to print event by event")
		limit    = flag.Int("limit", 50, "maximum events for -dump (0 = all)")
		replay   = flag.String("replay", "", "trace file to replay")
		detector = flag.String("detector", "pmdebugger", "detector for -replay")
		model    = flag.String("model", "strict", "persistency model for -replay: strict, epoch, strand")
		parallel = flag.Bool("parallel", false, "replay strand-model traces on a sharded worker pool (pmdebugger only)")
		workers  = flag.Int("workers", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*record, *n, *out, *info, *dump, *limit, *replay, *detector, *model, *parallel, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
}

func run(record string, n int, out, info, dump string, limit int, replay, detector, model string, parallel bool, workers int) error {
	switch {
	case record != "":
		return doRecord(record, n, out)
	case info != "":
		return doInfo(info)
	case dump != "":
		return doDump(dump, limit)
	case replay != "":
		return doReplay(replay, detector, model, parallel, workers)
	default:
		return fmt.Errorf("one of -record, -info, -dump or -replay is required")
	}
}

func doDump(path string, limit int) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	tr, err := trace.NewReader(file)
	if err != nil {
		return err
	}
	defer tr.Close()
	batch := make([]trace.Event, trace.StreamBatchSize)
	printed, skipped := 0, 0
	for {
		n, rerr := tr.ReadBatch(batch)
		for _, ev := range batch[:n] {
			if limit > 0 && printed >= limit {
				skipped++
				continue
			}
			fmt.Println(ev)
			printed++
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	if skipped > 0 {
		fmt.Printf("... %d more events\n", skipped)
	}
	return nil
}

func doRecord(name string, n int, out string) error {
	f, err := workloads.Lookup(name)
	if err != nil {
		return err
	}
	app, pm, err := workloads.Build(f, n)
	if err != nil {
		return err
	}
	file, err := os.Create(out)
	if err != nil {
		return err
	}
	defer file.Close()
	// Record straight to disk: the trace writer is itself a streaming batch
	// handler, so the capture never materializes the event stream either.
	tw, err := trace.NewWriter(file)
	if err != nil {
		return err
	}
	var stores, flushes, fences, total uint64
	counter := trace.HandlerFunc(func(ev trace.Event) {
		total++
		switch ev.Kind {
		case trace.KindStore:
			stores++
		case trace.KindFlush:
			flushes++
		case trace.KindFence:
			fences++
		}
	})
	pm.Attach(trace.MultiHandler{tw, counter})
	if err := workloads.RunInserts(app, n, 42); err != nil {
		return err
	}
	if err := app.Close(); err != nil {
		return err
	}
	pm.End()
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d events (%d stores, %d writebacks, %d fences) to %s\n",
		total, stores, flushes, fences, out)
	return nil
}

func doInfo(path string) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	counts := map[trace.Kind]int{}
	total, err := trace.StreamTrace(file, trace.HandlerFunc(func(ev trace.Event) {
		counts[ev.Kind]++
	}))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d events\n", path, total)
	for k := trace.KindStore; k <= trace.KindEnd; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-14s %d\n", k, counts[k])
		}
	}
	return nil
}

func doReplay(path, detector, modelName string, parallel bool, workers int) error {
	var model rules.Model
	switch modelName {
	case "strict":
		model = rules.Strict
	case "epoch":
		model = rules.Epoch
	case "strand":
		model = rules.Strand
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	if parallel {
		if detector != "pmdebugger" {
			return fmt.Errorf("-parallel supports only the pmdebugger detector (got %q)", detector)
		}
		cfg := core.Config{Model: model}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if !core.Parallelizable(cfg) {
			fmt.Fprintf(os.Stderr, "pmtrace: model %s replays sequentially (only strand traces partition)\n", model)
		}
		rep, err := core.ReplayParallelStream(func() (io.ReadCloser, error) {
			return os.Open(path)
		}, cfg, workers)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		return nil
	}

	var det baselines.Detector
	switch detector {
	case "pmdebugger":
		det = core.New(core.Config{Model: model})
	case "pmemcheck":
		det = baselines.NewPmemcheck()
	case "pmtest":
		det = baselines.NewPMTest(baselines.PMTestConfig{})
	case "xfdetector":
		det = baselines.NewXFDetector(baselines.XFDetectorConfig{})
	case "persistence-inspector":
		det = baselines.NewPersistenceInspector()
	case "nulgrind":
		det = baselines.NewNulgrind()
	default:
		return fmt.Errorf("unknown detector %q", detector)
	}
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	// Stream in pooled batches; detectors with a batch fast path use it.
	if _, err := trace.StreamTrace(file, baselines.WithBatch(det)); err != nil {
		return err
	}
	fmt.Print(det.Report().Summary())
	return nil
}
