// Command pmtrace records a workload's instrumented instruction stream to a
// trace file, inspects traces, and replays them through a detector. Trace
// files decouple capture from analysis, so the identical stream can be fed
// to several detectors — the same methodology the benchmark harness uses
// internally for fair comparisons.
//
// Usage:
//
//	pmtrace -record b_tree -n 10000 -o btree.pmtrace
//	pmtrace -info btree.pmtrace
//	pmtrace -replay btree.pmtrace -detector pmdebugger -model epoch
package main

import (
	"flag"
	"fmt"
	"os"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/trace"
	"pmdebugger/internal/workloads"
)

func main() {
	var (
		record   = flag.String("record", "", "workload to record (a Table 4 benchmark name)")
		n        = flag.Int("n", 10000, "operation count for -record")
		out      = flag.String("o", "trace.pmtrace", "output path for -record")
		info     = flag.String("info", "", "trace file to summarize")
		dump     = flag.String("dump", "", "trace file to print event by event")
		limit    = flag.Int("limit", 50, "maximum events for -dump (0 = all)")
		replay   = flag.String("replay", "", "trace file to replay")
		detector = flag.String("detector", "pmdebugger", "detector for -replay")
		model    = flag.String("model", "strict", "persistency model for -replay: strict, epoch, strand")
	)
	flag.Parse()
	if err := run(*record, *n, *out, *info, *dump, *limit, *replay, *detector, *model); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
}

func run(record string, n int, out, info, dump string, limit int, replay, detector, model string) error {
	switch {
	case record != "":
		return doRecord(record, n, out)
	case info != "":
		return doInfo(info)
	case dump != "":
		return doDump(dump, limit)
	case replay != "":
		return doReplay(replay, detector, model)
	default:
		return fmt.Errorf("one of -record, -info, -dump or -replay is required")
	}
}

func doDump(path string, limit int) error {
	events, err := readTraceFile(path)
	if err != nil {
		return err
	}
	for i, ev := range events {
		if limit > 0 && i >= limit {
			fmt.Printf("... %d more events\n", len(events)-i)
			break
		}
		fmt.Println(ev)
	}
	return nil
}

func doRecord(name string, n int, out string) error {
	f, err := workloads.Lookup(name)
	if err != nil {
		return err
	}
	app, pm, err := workloads.Build(f, n)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(n * 16)
	pm.Attach(rec)
	if err := workloads.RunInserts(app, n, 42); err != nil {
		return err
	}
	if err := app.Close(); err != nil {
		return err
	}
	pm.End()

	file, err := os.Create(out)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := trace.WriteTrace(file, rec.Events); err != nil {
		return err
	}
	stores, flushes, fences := rec.Counts()
	fmt.Printf("recorded %d events (%d stores, %d writebacks, %d fences) to %s\n",
		rec.Len(), stores, flushes, fences, out)
	return nil
}

func doInfo(path string) error {
	events, err := readTraceFile(path)
	if err != nil {
		return err
	}
	counts := map[trace.Kind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	for k := trace.KindStore; k <= trace.KindEnd; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-14s %d\n", k, counts[k])
		}
	}
	return nil
}

func doReplay(path, detector, modelName string) error {
	events, err := readTraceFile(path)
	if err != nil {
		return err
	}
	var model rules.Model
	switch modelName {
	case "strict":
		model = rules.Strict
	case "epoch":
		model = rules.Epoch
	case "strand":
		model = rules.Strand
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	var det baselines.Detector
	switch detector {
	case "pmdebugger":
		det = core.New(core.Config{Model: model})
	case "pmemcheck":
		det = baselines.NewPmemcheck()
	case "pmtest":
		det = baselines.NewPMTest(baselines.PMTestConfig{})
	case "xfdetector":
		det = baselines.NewXFDetector(baselines.XFDetectorConfig{})
	case "persistence-inspector":
		det = baselines.NewPersistenceInspector()
	case "nulgrind":
		det = baselines.NewNulgrind()
	default:
		return fmt.Errorf("unknown detector %q", detector)
	}
	for _, ev := range events {
		det.HandleEvent(ev)
	}
	fmt.Print(det.Report().Summary())
	return nil
}

func readTraceFile(path string) ([]trace.Event, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return trace.ReadTrace(file)
}
