package main

import (
	"path/filepath"
	"testing"
)

func TestRecordInfoDumpReplay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.pmtrace")
	if err := run("c_tree", 200, out, "", "", 0, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", out, "", 0, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", "", out, 10, "", "", ""); err != nil {
		t.Fatal(err)
	}
	for _, det := range []string{"pmdebugger", "pmemcheck", "persistence-inspector"} {
		if err := run("", 0, "", "", "", 0, out, det, "epoch"); err != nil {
			t.Errorf("%s: %v", det, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, "", "", "", 0, "", "", ""); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run("nope", 10, "/tmp/x.pmtrace", "", "", 0, "", "", ""); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("", 0, "", "/nonexistent", "", 0, "", "", ""); err == nil {
		t.Error("missing info file accepted")
	}
	out := "/tmp/pmtrace_errtest.pmtrace"
	if err := run("c_tree", 50, out, "", "", 0, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", "", "", 0, out, "nope", "epoch"); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run("", 0, "", "", "", 0, out, "pmdebugger", "nope"); err == nil {
		t.Error("unknown model accepted")
	}
}
