package main

import (
	"path/filepath"
	"testing"
)

func TestRecordInfoDumpReplay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.pmtrace")
	if err := run("c_tree", 200, out, "", "", 0, "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", out, "", 0, "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", "", out, 10, "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	for _, det := range []string{"pmdebugger", "pmemcheck", "persistence-inspector"} {
		if err := run("", 0, "", "", "", 0, out, det, "epoch", false, 0); err != nil {
			t.Errorf("%s: %v", det, err)
		}
	}
}

func TestParallelReplayFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.pmtrace")
	if err := run("synth_strand", 500, out, "", "", 0, "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	// Strand trace on the sharded path.
	if err := run("", 0, "", "", "", 0, out, "pmdebugger", "strand", true, 4); err != nil {
		t.Fatal(err)
	}
	// Non-strand model still works via the sequential fallback.
	if err := run("", 0, "", "", "", 0, out, "pmdebugger", "epoch", true, 4); err != nil {
		t.Fatal(err)
	}
	// -parallel refuses baseline detectors.
	if err := run("", 0, "", "", "", 0, out, "pmemcheck", "strand", true, 4); err == nil {
		t.Error("-parallel with a baseline detector accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, "", "", "", 0, "", "", "", false, 0); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run("nope", 10, "/tmp/x.pmtrace", "", "", 0, "", "", "", false, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("", 0, "", "/nonexistent", "", 0, "", "", "", false, 0); err == nil {
		t.Error("missing info file accepted")
	}
	out := "/tmp/pmtrace_errtest.pmtrace"
	if err := run("c_tree", 50, out, "", "", 0, "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", "", "", 0, out, "nope", "epoch", false, 0); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run("", 0, "", "", "", 0, out, "pmdebugger", "nope", false, 0); err == nil {
		t.Error("unknown model accepted")
	}
}
