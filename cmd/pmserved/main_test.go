package main

import (
	"bytes"
	"io"
	"os"
	"syscall"
	"testing"
	"time"

	"pmdebugger/internal/serve"
	"pmdebugger/internal/trace"
)

// TestRunServesAndDrains boots the daemon on ephemeral ports, runs one
// session through it, then delivers a SIGTERM and expects a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	sigc := make(chan os.Signal, 1)
	ready := make(chan *serve.Server, 1)
	done := make(chan error, 1)
	var logbuf bytes.Buffer
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0", "-drain-timeout", "5s"},
			&logbuf, sigc,
			func(s *serve.Server) { ready <- s },
		)
	}()

	var srv *serve.Server
	select {
	case srv = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	sess, err := serve.Dial(srv.Addr(), serve.Options{Tenant: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	sess.HandleBatch([]trace.Event{
		{Kind: trace.KindStore, Addr: 0x100, Size: 8},
		{Kind: trace.KindFlush, Addr: 0x100},
		{Kind: trace.KindFence},
	})
	if _, err := sess.Report(); err != nil {
		t.Fatal(err)
	}

	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v\nlog:\n%s", err, logbuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestRunBadFlags: flag errors surface instead of starting a server.
func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flags accepted")
	}
}
