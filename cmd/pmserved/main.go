// Command pmserved runs the detection service: a long-lived server that
// accepts streaming PM traces over TCP from many concurrent clients and
// runs one detector session per connection (see internal/serve for the
// protocol). The HTTP listener serves /healthz, /metrics, /sessions and
// /report/<session>.
//
// Usage:
//
//	pmserved -addr 127.0.0.1:7487 -http 127.0.0.1:7488
//
// SIGINT/SIGTERM starts a graceful drain: no new sessions are accepted and
// active ones get -drain-timeout to finish before their connections are
// force-closed (which poisons those sessions rather than wedging shutdown).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmdebugger/internal/serve"
)

func main() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, sigc, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pmserved:", err)
		os.Exit(1)
	}
}

// run is the testable body of main: it blocks until a signal arrives on
// sigc, then drains. onReady, when non-nil, receives the started server
// (tests use it to learn the bound ephemeral addresses).
func run(args []string, logw io.Writer, sigc <-chan os.Signal, onReady func(*serve.Server)) error {
	fs := flag.NewFlagSet("pmserved", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7487", "trace listener address")
		httpAddr  = fs.String("http", "127.0.0.1:7488", "operational HTTP listener address ('' disables)")
		depth     = fs.Int("depth", 0, "per-session pipeline slab-ring depth (0 = default)")
		maxShards = fs.Int("maxshards", 0, "cap on per-session shard requests (0 = 16)")
		drainT    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline before connections are force-closed")
	)
	fs.SetOutput(logw)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(logw, "", log.LstdFlags)
	srv := serve.New(serve.Config{
		Addr:          *addr,
		HTTPAddr:      *httpAddr,
		PipelineDepth: *depth,
		MaxShards:     *maxShards,
		Logf:          func(format string, a ...any) { logger.Printf(format, a...) },
	})
	if err := srv.Start(); err != nil {
		return err
	}
	if onReady != nil {
		onReady(srv)
	}

	sig := <-sigc
	logger.Printf("pmserved: %v: draining (deadline %v)", sig, *drainT)
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain deadline exceeded; remaining sessions were force-closed: %w", err)
	}
	logger.Printf("pmserved: drained cleanly")
	return nil
}
