// Command pmbugsuite runs the 78-case bug suite under all four detectors
// and prints the Table 6 capability matrix, the §7.3 false-negative /
// false-positive rates, and the §7.4 new-bug reproductions.
//
// Usage:
//
//	pmbugsuite                 # Table 6 matrix + rates
//	pmbugsuite -missed         # also list each detector's missed cases
//	pmbugsuite -newbugs        # reproduce the 19 memcached bugs + 2 PMDK bugs
package main

import (
	"flag"
	"fmt"
	"os"

	"pmdebugger/internal/bugsuite"
	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/pmdk"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/report"
	"pmdebugger/internal/rules"
)

func main() {
	var (
		missed  = flag.Bool("missed", false, "list missed case ids per detector")
		newbugs = flag.Bool("newbugs", false, "reproduce the §7.4 new bugs")
	)
	flag.Parse()
	if err := run(*missed, *newbugs); err != nil {
		fmt.Fprintln(os.Stderr, "pmbugsuite:", err)
		os.Exit(1)
	}
}

func run(missed, newbugs bool) error {
	if newbugs {
		return runNewBugs()
	}
	m, err := bugsuite.RunMatrix()
	if err != nil {
		return err
	}
	fmt.Print(m.Format())
	fmt.Println()
	for _, k := range bugsuite.AllDetectors() {
		fmt.Printf("%-12s false negative rate %5.1f%%, false positives %d\n",
			k, m.FalseNegativeRate(k), m.FalsePositives[k])
	}
	if missed {
		fmt.Println()
		fmt.Print(m.FormatMissed())
	}
	return nil
}

// runNewBugs reproduces §7.4: the 19 memcached bugs and the two PMDK bugs
// (redundant epoch fence in hashmap_atomic's data_store path, Fig. 9b, and
// lack of durability in the array example's epoch, Fig. 9c).
func runNewBugs() error {
	fmt.Println("=== §7.4 new bug reproduction ===")

	// 19 memcached bugs. The pool is kept small so the eviction path
	// triggers; the metadata-touching exerciser runs last so later chunk
	// reuse cannot supersede the unpersisted stores it plants.
	cache, err := memcached.New(memcached.Config{
		PoolSize: 4 << 20, HashBuckets: 1 << 12, UseCAS: true, Bugs: true,
	})
	if err != nil {
		return err
	}
	det := core.New(core.Config{Model: rules.Strict, Rules: rules.RuleNoDurability})
	cache.PM().Attach(det)
	if err := memslap.Run(cache, memslap.Config{Ops: 5000, Seed: 42}); err != nil {
		return err
	}
	if err := memslap.ExerciseEvictions(cache, 4000); err != nil {
		return err
	}
	if err := memslap.ExerciseAll(cache); err != nil {
		return err
	}
	cache.PM().End()
	rep := det.Report()
	found := map[string]bool{}
	for _, b := range rep.Bugs {
		if b.Type == report.NoDurability {
			found[b.Site.String()] = true
		}
	}
	n := 0
	fmt.Println("\nmemcached (faithful port):")
	for _, s := range cache.BugSites() {
		mark := "MISSED"
		if found[s.String()] {
			mark = "found"
			n++
		}
		fmt.Printf("  [%s] no durability guarantee at %s\n", mark, s)
	}
	fmt.Printf("  => %d/19 new memcached bugs detected (paper: 19)\n", n)

	// PMDK bug 2: redundant epoch fence (pmemobj_persist inside TX).
	pm := pmem.New(1 << 20)
	det2 := core.New(core.Config{Model: rules.Epoch})
	pm.Attach(det2)
	p, err := pmdk.Create(pm, 128)
	if err != nil {
		return err
	}
	root, _ := p.Root()
	tx := p.Begin()
	tx.Set(root, 1)
	p.Persist(root, 8) // create_hashmap's pmemobj_persist inside the TX
	tx.Commit()
	pm.End()
	fmt.Println("\nPMDK hashmap_atomic (Fig. 9b):")
	printType(det2.Report(), report.RedundantEpochFence)

	// PMDK bug 3: lack durability in epoch (array example).
	pm3 := pmem.New(1 << 20)
	det3 := core.New(core.Config{Model: rules.Epoch})
	pm3.Attach(det3)
	p3, err := pmdk.Create(pm3, 256)
	if err != nil {
		return err
	}
	root3, _ := p3.Root()
	tx3 := p3.Begin()
	// do_alloc: info fields modified with plain stores...
	p3.Ctx().Store64(root3+64, 123) // info->size
	p3.Ctx().Store64(root3+72, 7)   // info->type
	// ...while only the allocated array is persisted (alloc_int).
	arr := p3.Alloc(256)
	tx3.SetBytes(arr, make([]byte, 64))
	tx3.Commit()
	pm3.End()
	fmt.Println("\nPMDK array example (Fig. 9c):")
	printType(det3.Report(), report.LackDurabilityInEpoch)
	return nil
}

func printType(rep *report.Report, t report.BugType) {
	any := false
	for _, b := range rep.Bugs {
		if b.Type == t {
			fmt.Printf("  [found] %s\n", b)
			any = true
		}
	}
	if !any {
		fmt.Printf("  [MISSED] expected %s\n", t)
	}
}
