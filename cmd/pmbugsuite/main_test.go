package main

import "testing"

func TestRunMatrix(t *testing.T) {
	if err := run(true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunNewBugs(t *testing.T) {
	if err := run(false, true); err != nil {
		t.Fatal(err)
	}
}
