// Command pmdebug runs a PM workload under a chosen detector and prints the
// bug report — the equivalent of `valgrind --tool=pmdebugger ./WORKLOAD`.
//
// Usage:
//
//	pmdebug -workload b_tree -n 10000 -detector pmdebugger
//	pmdebug -workload memcached -n 10000 -buggy -detector pmdebugger
//	pmdebug -workload memcached -n 10000 -threads 4 -async
//	pmdebug -workload memcached -n 10000 -threads 4 -strands -async -shards 4
//	pmdebug -workload redis -n 10000 -detector pmemcheck
//	pmdebug -workload b_tree -n 1000 -orders orders.conf
//
// -async attaches the detector through the asynchronous trace.Pipeline, so
// detection runs off the workload's critical path; reports are
// byte-identical to inline delivery (the pool drains the pipeline at every
// observation point).
//
// -shards N (pmdebugger only, implies -async) fans the pipeline out to N
// per-strand detector shards, each with its own consumer goroutine. The
// configuration must be shardable (strand persistency model, no order
// specs); otherwise pmdebug falls back to the single-consumer pipeline and
// says so on stderr. -strands runs each memcached operation in its own
// strand section, which makes the memcached workload shardable.
//
// -serve ADDR streams the workload's trace to a running pmserved instance
// instead of running a detector in-process: the detector session lives on
// the server, and pmdebug prints the report pulled back over the same
// connection. -drain and -shards then select the server session's drain
// discipline and shard fan-out:
//
//	pmdebug -workload memcached -n 10000 -strands -serve 127.0.0.1:7487 -shards 4 -drain lazy
//
// The -orders file uses the configuration syntax of §4.5:
//
//	order value before key [in function]
package main

import (
	"flag"
	"fmt"
	"os"

	"pmdebugger/internal/baselines"
	"pmdebugger/internal/core"
	"pmdebugger/internal/memcached"
	"pmdebugger/internal/memslap"
	"pmdebugger/internal/pmem"
	"pmdebugger/internal/redis"
	"pmdebugger/internal/rules"
	"pmdebugger/internal/serve"
	"pmdebugger/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "b_tree", "workload: one of the Table 4 benchmarks, memcached, or redis")
		n        = flag.Int("n", 10000, "operation count")
		detector = flag.String("detector", "pmdebugger", "detector: pmdebugger, pmemcheck, pmtest, xfdetector, nulgrind")
		buggy    = flag.Bool("buggy", false, "memcached only: run the faithful port with its 19 bugs")
		threads  = flag.Int("threads", 1, "memcached only: client threads")
		ordersF  = flag.String("orders", "", "persist-order configuration file (order X before Y)")
		async    = flag.Bool("async", false, "attach the detector through the asynchronous pipeline")
		shards   = flag.Int("shards", 0, "pmdebugger only: fan detection out across this many per-strand shards (implies -async)")
		strands  = flag.Bool("strands", false, "memcached only: run each operation in its own strand section (strand model)")
		serveA   = flag.String("serve", "", "stream the trace to a pmserved instance at this address instead of detecting in-process")
		tenant   = flag.String("tenant", "pmdebug", "with -serve: tenant name for the server's per-tenant metrics")
		drain    = flag.String("drain", "", "with -serve: session drain discipline, eager or lazy")
	)
	flag.Parse()
	if err := run(runOpts{
		workload: *workload, n: *n, detector: *detector, buggy: *buggy,
		threads: *threads, ordersFile: *ordersF, async: *async,
		shards: *shards, strands: *strands,
		serveAddr: *serveA, tenant: *tenant, drain: *drain,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pmdebug:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	workload   string
	n          int
	detector   string
	buggy      bool
	threads    int
	ordersFile string
	async      bool
	shards     int
	strands    bool
	serveAddr  string
	tenant     string
	drain      string
}

func run(o runOpts) error {
	var orders []rules.OrderSpec
	if o.ordersFile != "" {
		f, err := os.Open(o.ordersFile)
		if err != nil {
			return err
		}
		defer f.Close()
		orders, err = rules.ParseOrderConfig(f)
		if err != nil {
			return err
		}
	}
	if o.shards > 1 {
		if o.detector != "pmdebugger" {
			return fmt.Errorf("-shards requires -detector pmdebugger (got %q)", o.detector)
		}
		if o.serveAddr == "" {
			o.async = true
		}
	}
	if o.serveAddr != "" {
		if o.detector != "pmdebugger" {
			return fmt.Errorf("-serve streams to the pmdebugger service; it cannot run -detector %q", o.detector)
		}
		if o.ordersFile != "" {
			return fmt.Errorf("-orders is not supported with -serve (order specs are not part of the session handshake)")
		}
		if o.async {
			return fmt.Errorf("-async is meaningless with -serve (the server pipelines per session); drop it")
		}
	}

	// sess is the remote detector session when -serve is set; build then
	// returns a nil local detector and attach wires the session instead.
	var sess *serve.Session

	build := func(model rules.Model) (baselines.Detector, error) {
		if o.serveAddr != "" {
			s, err := serve.Dial(o.serveAddr, serve.Options{
				Tenant: o.tenant, Model: model, Drain: o.drain, Shards: o.shards,
			})
			if err != nil {
				return nil, err
			}
			sess = s
			return nil, nil
		}
		switch o.detector {
		case "pmdebugger":
			cfg := core.Config{Model: model, Orders: orders}
			if o.shards > 1 {
				sd := core.NewSharded(cfg, o.shards)
				if sd.Fallback() {
					// Never silently benchmark the wrong mode: the fallback
					// is functionally identical but has single-consumer
					// performance.
					fmt.Fprintf(os.Stderr,
						"pmdebug: -shards %d fell back to a single-consumer pipeline: %s\n",
						o.shards, sd.FallbackReason())
				}
				return sd, nil
			}
			return core.New(cfg), nil
		case "pmemcheck":
			return baselines.NewPmemcheck(), nil
		case "pmtest":
			return baselines.NewPMTest(baselines.PMTestConfig{Orders: orders}), nil
		case "xfdetector":
			return baselines.NewXFDetector(baselines.XFDetectorConfig{Orders: orders}), nil
		case "nulgrind":
			return baselines.NewNulgrind(), nil
		default:
			return nil, fmt.Errorf("unknown detector %q", o.detector)
		}
	}

	// Size pools to the requested operation count, capped at the paper's
	// 256 MiB real-workload pools.
	poolSize := uint64(o.n)*1024 + (8 << 20)
	if poolSize > 256<<20 {
		poolSize = 256 << 20
	}

	attach := func(pm *pmem.Pool, det baselines.Detector) {
		switch {
		case sess != nil:
			pm.Attach(sess)
		case o.shards > 1:
			pm.AttachWith(det, pmem.AttachOptions{Async: true, Shards: o.shards})
		case o.async:
			pm.AttachAsync(det)
		default:
			pm.Attach(det)
		}
	}

	var (
		det    baselines.Detector
		pmPool *pmem.Pool
		err    error
	)
	switch o.workload {
	case "memcached":
		cache, cerr := memcached.New(memcached.Config{
			PoolSize: poolSize, HashBuckets: 1 << 16, UseCAS: true, Bugs: o.buggy,
			Strands: o.strands,
		})
		if cerr != nil {
			return cerr
		}
		if det, err = build(cache.Model()); err != nil {
			return err
		}
		attach(cache.PM(), det)
		if o.buggy {
			if err := memslap.ExerciseAll(cache); err != nil {
				return err
			}
		}
		if err := memslap.Run(cache, memslap.Config{Ops: o.n, Threads: o.threads, Seed: 42}); err != nil {
			return err
		}
		cache.PM().End()
		pmPool = cache.PM()

	case "redis":
		srv, serr := redis.New(redis.Config{PoolSize: poolSize, MaxKeys: o.n / 2, Seed: 42})
		if serr != nil {
			return serr
		}
		if det, err = build(srv.Model()); err != nil {
			return err
		}
		attach(srv.PM(), det)
		if err := srv.RunLRUTest(o.n, 42); err != nil {
			return err
		}
		srv.PM().End()
		pmPool = srv.PM()

	default:
		f, ferr := workloads.Lookup(o.workload)
		if ferr != nil {
			return ferr
		}
		if det, err = build(f.Model); err != nil {
			return err
		}
		app, pm, berr := workloads.Build(f, o.n)
		if berr != nil {
			return berr
		}
		attach(pm, det)
		if err := workloads.RunInserts(app, o.n, 42); err != nil {
			return err
		}
		if err := app.Close(); err != nil {
			return err
		}
		pm.End()
		pmPool = pm
	}

	if sess != nil {
		sum, rerr := sess.Report()
		fmt.Print(sum)
		fmt.Printf("delivery: served by %s (session %s)\n", o.serveAddr, sess.ID())
		if rerr != nil {
			return rerr
		}
		if pmPool != nil {
			st := pmPool.Stats()
			fmt.Printf("pool: %d stores (%d bytes), %d writebacks, %d fences, %d lines committed\n",
				st.Stores, st.BytesStored, st.Flushes, st.Fences, st.LinesCommitted)
		}
		return nil
	}

	fmt.Print(det.Report().Summary())
	if sd, ok := det.(*core.ShardedDetector); ok {
		if sd.Fallback() {
			fmt.Printf("delivery: sharded attach FELL BACK to a single consumer (%s)\n",
				sd.FallbackReason())
		} else {
			fmt.Printf("delivery: sharded across %d detector shards\n", sd.Shards())
		}
	}
	if pmPool != nil {
		st := pmPool.Stats()
		fmt.Printf("pool: %d stores (%d bytes), %d writebacks, %d fences, %d lines committed\n",
			st.Stores, st.BytesStored, st.Flushes, st.Fences, st.LinesCommitted)
	}
	return nil
}
