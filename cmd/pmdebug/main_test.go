package main

import "testing"

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"b_tree", "hashmap_atomic", "memcached", "redis"} {
		if err := run(w, 200, "pmdebugger", false, 1, "", false); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestRunBuggyMemcached(t *testing.T) {
	if err := run("memcached", 200, "pmdebugger", true, 1, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllDetectors(t *testing.T) {
	for _, d := range []string{"pmemcheck", "pmtest", "xfdetector", "nulgrind"} {
		if err := run("c_tree", 100, d, false, 1, "", false); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestRunAsync(t *testing.T) {
	// Every workload path under the asynchronous pipeline, including the
	// multi-threaded memcached case the pipeline exists for.
	for _, w := range []string{"b_tree", "memcached", "redis"} {
		if err := run(w, 200, "pmdebugger", false, 4, "", true); err != nil {
			t.Errorf("%s async: %v", w, err)
		}
	}
	if err := run("memcached", 200, "pmemcheck", false, 2, "", true); err != nil {
		t.Errorf("pmemcheck async: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 10, "pmdebugger", false, 1, "", false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("b_tree", 10, "nope", false, 1, "", false); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run("b_tree", 10, "pmdebugger", false, 1, "/nonexistent/orders", false); err == nil {
		t.Error("missing orders file accepted")
	}
}
