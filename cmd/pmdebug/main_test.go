package main

import (
	"context"
	"testing"
	"time"

	"pmdebugger/internal/serve"
)

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"b_tree", "hashmap_atomic", "memcached", "redis"} {
		if err := run(runOpts{workload: w, n: 200, detector: "pmdebugger", threads: 1}); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
}

func TestRunBuggyMemcached(t *testing.T) {
	if err := run(runOpts{workload: "memcached", n: 200, detector: "pmdebugger", buggy: true, threads: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllDetectors(t *testing.T) {
	for _, d := range []string{"pmemcheck", "pmtest", "xfdetector", "nulgrind"} {
		if err := run(runOpts{workload: "c_tree", n: 100, detector: d, threads: 1}); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestRunAsync(t *testing.T) {
	// Every workload path under the asynchronous pipeline, including the
	// multi-threaded memcached case the pipeline exists for.
	for _, w := range []string{"b_tree", "memcached", "redis"} {
		if err := run(runOpts{workload: w, n: 200, detector: "pmdebugger", threads: 4, async: true}); err != nil {
			t.Errorf("%s async: %v", w, err)
		}
	}
	if err := run(runOpts{workload: "memcached", n: 200, detector: "pmemcheck", threads: 2, async: true}); err != nil {
		t.Errorf("pmemcheck async: %v", err)
	}
}

func TestRunSharded(t *testing.T) {
	// Genuine fan-out: strand-section memcached and the synthetic strand
	// workload both qualify for sharding.
	for _, o := range []runOpts{
		{workload: "memcached", n: 200, detector: "pmdebugger", threads: 4, strands: true, shards: 4},
		{workload: "synth_strand", n: 200, detector: "pmdebugger", threads: 1, shards: 4},
		// Loud fallback: strict memcached is not shardable but must still run
		// and report correctly through the single-consumer degradation.
		{workload: "memcached", n: 200, detector: "pmdebugger", threads: 2, shards: 4},
	} {
		if err := run(o); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runOpts{workload: "nope", n: 10, detector: "pmdebugger", threads: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "nope", threads: 1}); err == nil {
		t.Error("unknown detector accepted")
	}
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmdebugger", threads: 1, ordersFile: "/nonexistent/orders"}); err == nil {
		t.Error("missing orders file accepted")
	}
	// -shards with a non-pmdebugger detector must be rejected, not silently
	// ignored.
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmemcheck", threads: 1, shards: 4}); err == nil {
		t.Error("-shards with pmemcheck accepted")
	}
}

// TestRunServe streams workloads to an in-process pmserved instead of
// detecting locally, including a sharded strand-mode session.
func TestRunServe(t *testing.T) {
	srv := serve.New(serve.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	for _, o := range []runOpts{
		{workload: "b_tree", n: 200, detector: "pmdebugger", threads: 1, serveAddr: srv.Addr(), tenant: "cli"},
		{workload: "memcached", n: 200, detector: "pmdebugger", buggy: true, threads: 2, serveAddr: srv.Addr(), tenant: "cli"},
		{workload: "memcached", n: 200, detector: "pmdebugger", threads: 2, strands: true,
			shards: 4, drain: "lazy", serveAddr: srv.Addr(), tenant: "cli"},
	} {
		if err := run(o); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
	}
}

func TestRunServeErrors(t *testing.T) {
	// -serve composes only with the pmdebugger detector and no order specs.
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmemcheck", threads: 1, serveAddr: "127.0.0.1:1"}); err == nil {
		t.Error("-serve with pmemcheck accepted")
	}
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmdebugger", threads: 1,
		serveAddr: "127.0.0.1:1", ordersFile: "orders.conf"}); err == nil {
		t.Error("-serve with -orders accepted")
	}
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmdebugger", threads: 1,
		serveAddr: "127.0.0.1:1", async: true}); err == nil {
		t.Error("-serve with -async accepted")
	}
	// Unreachable server: the dial failure must surface.
	if err := run(runOpts{workload: "b_tree", n: 10, detector: "pmdebugger", threads: 1,
		serveAddr: "127.0.0.1:1", tenant: "x"}); err == nil {
		t.Error("unreachable server accepted")
	}
}
