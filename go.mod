module pmdebugger

go 1.22
